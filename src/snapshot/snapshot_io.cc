#include "src/snapshot/snapshot_io.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/common/check.h"

namespace threesigma {
namespace {

constexpr char kMagic[8] = {'3', 'S', 'G', 'S', 'N', 'A', 'P', '1'};
constexpr size_t kMagicSize = sizeof(kMagic);
constexpr size_t kCrcSize = 4;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void AppendU32(std::string* buffer, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* buffer, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

// Walks the section headers of a verified buffer. Returns false on a
// structural violation.
bool WalkSections(const std::string& buffer, std::vector<SnapshotSection>* out,
                  std::string* error) {
  const size_t end = buffer.size() - kCrcSize;
  size_t pos = kMagicSize;
  while (pos < end) {
    if (pos + 1 > end) {
      *error = "truncated section header";
      return false;
    }
    const size_t name_len = static_cast<uint8_t>(buffer[pos]);
    ++pos;
    if (name_len == 0 || pos + name_len + 4 + 8 > end) {
      *error = "truncated section header";
      return false;
    }
    SnapshotSection section;
    section.name.assign(buffer, pos, name_len);
    pos += name_len;
    section.version = LoadU32(buffer.data() + pos);
    pos += 4;
    section.payload_size = LoadU64(buffer.data() + pos);
    pos += 8;
    if (section.payload_size > end - pos) {
      *error = "section '" + section.name + "' payload overruns buffer";
      return false;
    }
    section.payload_offset = pos;
    section.hash = HashBytes(buffer.data() + pos, section.payload_size);
    pos += section.payload_size;
    if (out != nullptr) {
      out->push_back(std::move(section));
    }
  }
  return true;
}

// Magic + CRC validation shared by the reader and the enumerators.
bool VerifyEnvelope(std::string_view buffer, std::string* error) {
  if (buffer.size() < kMagicSize + kCrcSize) {
    *error = "snapshot truncated: shorter than header + CRC";
    return false;
  }
  if (std::memcmp(buffer.data(), kMagic, kMagicSize) != 0) {
    *error = "bad snapshot magic";
    return false;
  }
  const size_t body = buffer.size() - kCrcSize;
  const uint32_t stored = LoadU32(buffer.data() + body);
  const uint32_t actual = Crc32(buffer.data(), body);
  if (stored != actual) {
    char msg[96];
    std::snprintf(msg, sizeof(msg), "snapshot CRC mismatch: stored %08x, computed %08x", stored,
                  actual);
    *error = msg;
    return false;
  }
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t HashBytes(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

SnapshotWriter::SnapshotWriter() { buffer_.append(kMagic, kMagicSize); }

void SnapshotWriter::BeginSection(std::string_view name, uint32_t version) {
  TS_CHECK(!finished_);
  TS_CHECK_MSG(!in_section_, "sections cannot nest");
  TS_CHECK_MSG(!name.empty() && name.size() <= 255, "section name length out of range");
  buffer_.push_back(static_cast<char>(name.size()));
  buffer_.append(name.data(), name.size());
  AppendU32(&buffer_, version);
  section_length_at_ = buffer_.size();
  AppendU64(&buffer_, 0);  // Patched by EndSection.
  in_section_ = true;
}

void SnapshotWriter::EndSection() {
  TS_CHECK(in_section_);
  const uint64_t payload = buffer_.size() - (section_length_at_ + 8);
  for (int i = 0; i < 8; ++i) {
    buffer_[section_length_at_ + i] = static_cast<char>((payload >> (8 * i)) & 0xFF);
  }
  in_section_ = false;
}

void SnapshotWriter::WriteU8(uint8_t v) {
  TS_CHECK(in_section_);
  buffer_.push_back(static_cast<char>(v));
}

void SnapshotWriter::WriteU32(uint32_t v) {
  TS_CHECK(in_section_);
  AppendU32(&buffer_, v);
}

void SnapshotWriter::WriteU64(uint64_t v) {
  TS_CHECK(in_section_);
  AppendU64(&buffer_, v);
}

void SnapshotWriter::WriteVarU64(uint64_t v) {
  TS_CHECK(in_section_);
  while (v >= 0x80) {
    buffer_.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<char>(v));
}

void SnapshotWriter::WriteVarI64(int64_t v) {
  // Zigzag: small magnitudes of either sign stay short.
  WriteVarU64((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

void SnapshotWriter::WriteDouble(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void SnapshotWriter::WriteBool(bool v) { WriteU8(v ? 1 : 0); }

void SnapshotWriter::WriteString(std::string_view s) {
  WriteVarU64(s.size());
  buffer_.append(s.data(), s.size());
}

void SnapshotWriter::WriteBytes(const void* data, size_t size) {
  TS_CHECK(in_section_);
  buffer_.append(static_cast<const char*>(data), size);
}

void SnapshotWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteVarU64(v.size());
  for (double x : v) {
    WriteDouble(x);
  }
}

void SnapshotWriter::WriteIntVec(const std::vector<int>& v) {
  WriteVarU64(v.size());
  for (int x : v) {
    WriteVarI64(x);
  }
}

std::string SnapshotWriter::Finish() {
  TS_CHECK(!finished_);
  TS_CHECK_MSG(!in_section_, "Finish() with an open section");
  finished_ = true;
  AppendU32(&buffer_, Crc32(buffer_.data(), buffer_.size()));
  return std::move(buffer_);
}

bool SnapshotWriter::FinishToFile(const std::string& path, std::string* error) {
  return WriteFileAtomic(path, Finish(), error);
}

SnapshotReader::SnapshotReader(std::string buffer) : owned_(std::move(buffer)), buffer_(owned_) {
  std::string error;
  if (!VerifyEnvelope(buffer_, &error)) {
    Fail(error);
    return;
  }
  pos_ = kMagicSize;
}

SnapshotReader::SnapshotReader(Borrowed, std::string_view buffer) : buffer_(buffer) {
  std::string error;
  if (!VerifyEnvelope(buffer_, &error)) {
    Fail(error);
    return;
  }
  pos_ = kMagicSize;
}

bool SnapshotReader::HasMoreSections() const {
  return ok_ && !in_section_ && pos_ < buffer_.size() - kCrcSize;
}

std::string SnapshotReader::PeekSectionName() {
  if (!HasMoreSections()) {
    return "";
  }
  const size_t name_len = static_cast<uint8_t>(buffer_[pos_]);
  if (name_len == 0 || pos_ + 1 + name_len > buffer_.size() - kCrcSize) {
    return "";
  }
  return std::string(buffer_.substr(pos_ + 1, name_len));
}

bool SnapshotReader::BeginSection(std::string_view name, uint32_t* version) {
  if (!ok_) {
    return false;
  }
  TS_CHECK_MSG(!in_section_, "BeginSection inside an open section");
  const size_t end = buffer_.size() - kCrcSize;
  if (pos_ + 1 > end) {
    Fail("expected section '" + std::string(name) + "', found end of snapshot");
    return false;
  }
  const size_t name_len = static_cast<uint8_t>(buffer_[pos_]);
  if (name_len == 0 || pos_ + 1 + name_len + 4 + 8 > end) {
    Fail("truncated section header");
    return false;
  }
  const std::string_view found(buffer_.data() + pos_ + 1, name_len);
  if (found != name) {
    Fail("expected section '" + std::string(name) + "', found '" + std::string(found) + "'");
    return false;
  }
  pos_ += 1 + name_len;
  const uint32_t v = LoadU32(buffer_.data() + pos_);
  pos_ += 4;
  const uint64_t payload = LoadU64(buffer_.data() + pos_);
  pos_ += 8;
  if (payload > end - pos_) {
    Fail("section '" + std::string(name) + "' payload overruns buffer");
    return false;
  }
  section_end_ = pos_ + payload;
  in_section_ = true;
  if (version != nullptr) {
    *version = v;
  }
  return true;
}

void SnapshotReader::EndSection() {
  if (!ok_) {
    return;
  }
  TS_CHECK(in_section_);
  pos_ = section_end_;  // Skip anything this reader did not consume.
  in_section_ = false;
}

bool SnapshotReader::TakeBytes(void* out, size_t size) {
  if (!ok_) {
    return false;
  }
  if (!in_section_ || pos_ + size > section_end_) {
    Fail("section payload underrun");
    return false;
  }
  std::memcpy(out, buffer_.data() + pos_, size);
  pos_ += size;
  return true;
}

void SnapshotReader::Fail(const std::string& message) {
  if (ok_) {
    ok_ = false;
    error_ = message;
  }
}

uint8_t SnapshotReader::ReadU8() {
  uint8_t v = 0;
  TakeBytes(&v, 1);
  return v;
}

uint32_t SnapshotReader::ReadU32() {
  char raw[4];
  if (!TakeBytes(raw, sizeof(raw))) {
    return 0;
  }
  return LoadU32(raw);
}

uint64_t SnapshotReader::ReadU64() {
  char raw[8];
  if (!TakeBytes(raw, sizeof(raw))) {
    return 0;
  }
  return LoadU64(raw);
}

uint64_t SnapshotReader::ReadVarU64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    uint8_t byte = 0;
    if (!TakeBytes(&byte, 1)) {
      return 0;
    }
    if (shift >= 64) {
      Fail("varint overflow");
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

uint64_t SnapshotReader::ReadVarCount(size_t min_elem_bytes) {
  const uint64_t count = ReadVarU64();
  if (!ok_) {
    return 0;
  }
  const uint64_t elem = min_elem_bytes > 0 ? min_elem_bytes : 1;
  // Divide instead of multiply: count * elem would wrap for adversarial
  // counts near 2^64 and sail past the bound it is meant to enforce.
  if (count > (section_end_ - pos_) / elem) {
    Fail("element count overruns section");
    return 0;
  }
  return count;
}

int64_t SnapshotReader::ReadVarI64() {
  const uint64_t z = ReadVarU64();
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double SnapshotReader::ReadDouble() {
  const uint64_t bits = ReadU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool SnapshotReader::ReadBool() { return ReadU8() != 0; }

std::string SnapshotReader::ReadString() {
  const uint64_t size = ReadVarU64();
  // Compare against the remaining span, never pos_ + size: the sum wraps for
  // adversarial sizes near 2^64 and would pass the bounds check.
  if (!ok_ || size > section_end_ - pos_) {
    Fail("string overruns section");
    return "";
  }
  std::string s(buffer_, pos_, size);
  pos_ += size;
  return s;
}

std::vector<double> SnapshotReader::ReadDoubleVec() {
  const uint64_t count = ReadVarU64();
  if (!ok_ || count > (section_end_ - pos_) / 8) {
    Fail("double vector overruns section");
    return {};
  }
  std::vector<double> v(count);
  for (uint64_t i = 0; i < count; ++i) {
    v[i] = ReadDouble();
  }
  return v;
}

std::vector<int> SnapshotReader::ReadIntVec() {
  const uint64_t count = ReadVarU64();
  if (!ok_ || count > section_end_ - pos_) {  // Each element is >= 1 byte.
    Fail("int vector overruns section");
    return {};
  }
  std::vector<int> v(count);
  for (uint64_t i = 0; i < count; ++i) {
    v[i] = static_cast<int>(ReadVarI64());
  }
  return v;
}

size_t SnapshotReader::SectionRemaining() const {
  if (!ok_ || !in_section_) {
    return 0;
  }
  return section_end_ - pos_;
}

bool ListSnapshotSections(const std::string& buffer, std::vector<SnapshotSection>* out,
                          std::string* error) {
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  if (out != nullptr) {
    out->clear();
  }
  if (!VerifyEnvelope(buffer, err)) {
    return false;
  }
  return WalkSections(buffer, out, err);
}

std::vector<std::string> DiffSnapshotSections(const std::string& a, const std::string& b,
                                              const std::vector<std::string>& ignore) {
  const auto ignored = [&ignore](const std::string& name) {
    return std::find(ignore.begin(), ignore.end(), name) != ignore.end();
  };
  std::vector<SnapshotSection> sa;
  std::vector<SnapshotSection> sb;
  std::vector<std::string> diff;
  if (!ListSnapshotSections(a, &sa) || !ListSnapshotSections(b, &sb)) {
    diff.push_back("<malformed snapshot>");
    return diff;
  }
  const auto find = [](const std::vector<SnapshotSection>& sections, const std::string& name)
      -> const SnapshotSection* {
    for (const SnapshotSection& s : sections) {
      if (s.name == name) {
        return &s;
      }
    }
    return nullptr;
  };
  for (const SnapshotSection& s : sa) {
    if (ignored(s.name)) {
      continue;
    }
    const SnapshotSection* other = find(sb, s.name);
    if (other == nullptr || other->payload_size != s.payload_size || other->hash != s.hash) {
      diff.push_back(s.name);
    }
  }
  for (const SnapshotSection& s : sb) {
    if (!ignored(s.name) && find(sa, s.name) == nullptr) {
      diff.push_back(s.name);
    }
  }
  return diff;
}

bool ReadFileToString(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for reading";
    }
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  if (in.bad()) {
    if (error != nullptr) {
      *error = "read error on '" + path + "'";
    }
    return false;
  }
  return true;
}

bool WriteFileAtomic(const std::string& path, const std::string& contents, std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) {
        *error = "cannot open '" + tmp + "' for writing";
      }
      return false;
    }
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      if (error != nullptr) {
        *error = "write error on '" + tmp + "'";
      }
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot rename '" + tmp + "' to '" + path + "'";
    }
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace threesigma
