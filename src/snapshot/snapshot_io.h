// Versioned, CRC-checked binary snapshot codec.
//
// The checkpoint/restore subsystem serializes the complete run state of a
// simulation — simulator clock and event queue, RNG streams, predictor
// histories, scheduler caches, accumulated metrics — into one self-contained
// buffer so a run can be killed and resumed byte-identically, and so two runs
// can be diffed module-by-module (examples/replay_diff.cpp).
//
// Container layout (all integers little-endian):
//
//   magic   "3SGSNAP1"                      8 bytes
//   section*                                repeated
//     u8      name length (1..255)
//     bytes   section name ("sim", "rng", "sched", ...)
//     u32     section version (per-section schema tag)
//     u64     payload length
//     bytes   payload
//   u32     CRC-32 (IEEE) over every preceding byte
//
// Sections are length-prefixed so a reader can skip payload it does not
// understand (EndSection always lands on the next section header, even if
// the payload grew fields in a newer version), and per-section version tags
// let each module evolve its schema independently of the container.
//
// Within a payload, the primitive vocabulary is:
//   - fixed-width little-endian u8/u32/u64/i64,
//   - LEB128 varints (counts, sizes) and zigzag varints (signed),
//   - doubles as their raw IEEE-754 bit pattern (exact round-trip),
//   - strings as varint length + bytes.
//
// Readers are fail-soft: any structural violation (underrun, section name
// mismatch, bad magic, bad CRC) latches ok() == false and every subsequent
// read returns a zero value, so callers validate once at the end instead of
// checking every field.

#ifndef SRC_SNAPSHOT_SNAPSHOT_IO_H_
#define SRC_SNAPSHOT_SNAPSHOT_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace threesigma {

// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` chains partial updates.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

// FNV-1a 64-bit hash; the per-section state fingerprint replay_diff compares.
uint64_t HashBytes(const void* data, size_t size);

class SnapshotWriter {
 public:
  SnapshotWriter();

  // Opens a named, versioned section. Sections cannot nest.
  void BeginSection(std::string_view name, uint32_t version);
  // Closes the current section and patches its length prefix.
  void EndSection();

  // Primitives; only valid inside a section.
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteVarU64(uint64_t v);           // LEB128.
  void WriteVarI64(int64_t v);            // Zigzag + LEB128.
  void WriteDouble(double v);             // Raw bit pattern.
  void WriteBool(bool v);
  void WriteString(std::string_view s);   // Varint length + bytes.
  void WriteBytes(const void* data, size_t size);

  // Vector helpers (varint count + elements).
  void WriteDoubleVec(const std::vector<double>& v);
  void WriteIntVec(const std::vector<int>& v);

  // Appends the trailing CRC and returns the finished buffer. The writer is
  // spent afterwards.
  std::string Finish();

  // Finish() + atomic file write (temp file + rename, so a crash mid-write
  // never leaves a torn checkpoint behind). Returns false with `*error` set
  // on IO failure.
  bool FinishToFile(const std::string& path, std::string* error = nullptr);

  size_t bytes_written() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t section_length_at_ = 0;  // Offset of the open section's length field.
  bool in_section_ = false;
  bool finished_ = false;
};

class SnapshotReader {
 public:
  // Tag selecting the non-owning constructor below.
  struct Borrowed {};

  // Verifies magic and CRC up front; ok() is false on a truncated or
  // corrupted buffer and every read then returns zero values.
  explicit SnapshotReader(std::string buffer);

  // Non-owning mode: reads directly out of `buffer`, which must outlive the
  // reader. The digital-twin fork path restores many clones from one live
  // snapshot and uses this to avoid a full buffer copy per fork. Same
  // up-front magic + CRC validation as the owning constructor.
  SnapshotReader(Borrowed, std::string_view buffer);

  // Readers hand out no references into the buffer, but the owning mode's
  // view points at owned_ — copying or moving would dangle it.
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  // Enters the next section, which must carry `name`; returns its version
  // through `*version` (may be null). On mismatch latches an error and
  // returns false.
  bool BeginSection(std::string_view name, uint32_t* version = nullptr);
  // Leaves the current section, skipping any unread payload (forward
  // compatibility: newer writers may append fields).
  void EndSection();

  // True when the cursor sits on another section header.
  bool HasMoreSections() const;
  // Name of the next section without entering it; empty at end-of-buffer.
  std::string PeekSectionName();

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  uint64_t ReadVarU64();
  // Reads an element count that precedes `count * >= min_elem_bytes` of
  // payload. Fails (returning 0) when the count could not possibly fit in
  // the section's remaining bytes, so callers can reserve()/resize() the
  // returned value without an attacker-controlled length triggering a
  // multi-gigabyte allocation. Use for every length read from an untrusted
  // buffer (network frames, on-disk snapshots).
  uint64_t ReadVarCount(size_t min_elem_bytes = 1);
  int64_t ReadVarI64();
  double ReadDouble();
  bool ReadBool();
  std::string ReadString();

  std::vector<double> ReadDoubleVec();
  std::vector<int> ReadIntVec();

  // Remaining unread bytes in the current section.
  size_t SectionRemaining() const;

 private:
  bool TakeBytes(void* out, size_t size);
  void Fail(const std::string& message);

  std::string owned_;        // Empty in borrowed mode.
  std::string_view buffer_;  // Views owned_ or the caller's buffer.
  size_t pos_ = 0;
  size_t section_end_ = 0;
  bool in_section_ = false;
  bool ok_ = true;
  std::string error_;
};

// One section of a finished snapshot buffer, with its payload fingerprint.
struct SnapshotSection {
  std::string name;
  uint32_t version = 0;
  uint64_t payload_offset = 0;
  uint64_t payload_size = 0;
  uint64_t hash = 0;  // FNV-1a of the payload bytes.
};

// Enumerates a snapshot buffer's sections (verifying magic + CRC). Returns
// false with `*error` set on a malformed buffer.
bool ListSnapshotSections(const std::string& buffer, std::vector<SnapshotSection>* out,
                          std::string* error = nullptr);

// Names of sections whose payload differs between two snapshots, in `a`'s
// section order (sections present on only one side also count as differing).
// Sections named in `ignore` are skipped (e.g. wall-clock timing).
std::vector<std::string> DiffSnapshotSections(const std::string& a, const std::string& b,
                                              const std::vector<std::string>& ignore = {});

// Whole-file helpers.
bool ReadFileToString(const std::string& path, std::string* out, std::string* error = nullptr);
bool WriteFileAtomic(const std::string& path, const std::string& contents,
                     std::string* error = nullptr);

}  // namespace threesigma

#endif  // SRC_SNAPSHOT_SNAPSHOT_IO_H_
