#include "src/metrics/timeline.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"
#include "src/common/table.h"

namespace threesigma {

ClusterTimeline::ClusterTimeline(const ClusterConfig& cluster, const SimResult& result,
                                 int samples)
    : cluster_(cluster), end_time_(std::max(result.end_time, 1e-9)) {
  TS_CHECK_GT(samples, 1);
  grid_.resize(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    grid_[static_cast<size_t>(i)] =
        end_time_ * static_cast<double>(i) / static_cast<double>(samples - 1);
  }
  occupancy_.assign(static_cast<size_t>(cluster.num_groups()),
                    std::vector<int>(static_cast<size_t>(samples), 0));
  for (const JobRecord& job : result.jobs) {
    for (const JobRun& run : job.runs) {
      TS_CHECK_GE(run.group, 0);
      TS_CHECK_LT(run.group, cluster.num_groups());
      TS_CHECK_LE(run.start, run.end);
      // Half-open occupancy [start, end): a completing job's nodes are free
      // at the completion instant.
      const auto first = std::lower_bound(grid_.begin(), grid_.end(), run.start);
      for (auto it = first; it != grid_.end() && *it < run.end; ++it) {
        occupancy_[static_cast<size_t>(run.group)]
                  [static_cast<size_t>(it - grid_.begin())] += job.spec.num_tasks;
      }
    }
  }
  // Sanity: the simulator never oversubscribes a group.
  for (int g = 0; g < cluster.num_groups(); ++g) {
    for (int i = 0; i < samples; ++i) {
      TS_CHECK_LE(occupancy(g, i), cluster.group(g).node_count);
    }
  }
}

double ClusterTimeline::UtilizationAt(int i) const {
  int busy = 0;
  for (int g = 0; g < cluster_.num_groups(); ++g) {
    busy += occupancy(g, i);
  }
  return static_cast<double>(busy) / cluster_.total_nodes();
}

double ClusterTimeline::MeanUtilization() const {
  double total = 0.0;
  for (int i = 0; i < samples(); ++i) {
    total += UtilizationAt(i);
  }
  return total / samples();
}

double ClusterTimeline::MeanGroupUtilization(int group) const {
  double total = 0.0;
  for (int i = 0; i < samples(); ++i) {
    total += static_cast<double>(occupancy(group, i)) / cluster_.group(group).node_count;
  }
  return total / samples();
}

std::string ClusterTimeline::RenderAscii() const {
  // Five shades from idle to full.
  static constexpr char kShades[] = {'.', ':', '=', '+', '#'};
  std::ostringstream os;
  size_t name_width = 0;
  for (const NodeGroup& g : cluster_.groups()) {
    name_width = std::max(name_width, g.name.size());
  }
  for (int g = 0; g < cluster_.num_groups(); ++g) {
    const NodeGroup& group = cluster_.group(g);
    os << group.name;
    for (size_t pad = group.name.size(); pad < name_width; ++pad) {
      os << ' ';
    }
    os << " |";
    for (int i = 0; i < samples(); ++i) {
      const double frac = static_cast<double>(occupancy(g, i)) / group.node_count;
      const int shade = std::min(4, static_cast<int>(frac * 5.0));
      os << kShades[shade];
    }
    os << "| " << TablePrinter::Fmt(MeanGroupUtilization(g) * 100.0, 0) << "% mean\n";
  }
  os << "cluster mean utilization: " << TablePrinter::Fmt(MeanUtilization() * 100.0, 1)
     << "% over " << TablePrinter::Fmt(end_time_ / 60.0, 1) << " minutes\n";
  return os.str();
}

}  // namespace threesigma
