// Result export: per-job CSV rows and metric summaries for offline analysis.

#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <iosfwd>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/sim/simulator.h"

namespace threesigma {

// One CSV row per job: identity, class, timings, outcome, deadline verdict.
void WriteJobRecordsCsv(std::ostream& os, const std::vector<JobRecord>& jobs);

// One CSV row per system run, covering every RunMetrics field benches use.
void WriteRunMetricsCsv(std::ostream& os, const std::vector<RunMetrics>& runs);

}  // namespace threesigma

#endif  // SRC_METRICS_REPORT_H_
