// Success metrics (§5 "Success metrics").
//
//   - SLO miss rate: % of SLO jobs that miss their deadline (jobs that never
//     complete count as misses),
//   - goodput: machine-hours of completed work, split by job class (SLO jobs
//     completing late still contribute goodput but count as misses),
//   - mean best-effort latency: mean response time (completion - submission)
//     of completed BE jobs,
// plus scheduling-cycle/solver runtime aggregates for the Fig. 12 study.

#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace threesigma {

struct RunMetrics {
  std::string system;

  // SLO jobs are right-censored out of the miss statistics when the
  // simulation stopped before their deadline without a completion (their
  // outcome is undecided); `slo_jobs` counts decided jobs only.
  int slo_jobs = 0;
  int slo_censored = 0;
  int be_jobs = 0;
  int slo_missed = 0;
  int slo_completed = 0;
  int be_completed = 0;
  int abandoned = 0;
  int unfinished = 0;
  int preemptions = 0;
  int rejected_placements = 0;

  double slo_miss_rate_percent = 0.0;
  double goodput_machine_hours = 0.0;     // Total completed work.
  double slo_goodput_machine_hours = 0.0;
  double be_goodput_machine_hours = 0.0;
  double mean_be_latency_seconds = 0.0;
  double p50_be_latency_seconds = 0.0;
  double p90_be_latency_seconds = 0.0;
  double p99_be_latency_seconds = 0.0;

  double mean_cycle_seconds = 0.0;
  double max_cycle_seconds = 0.0;
  double mean_solver_seconds = 0.0;
  double max_solver_seconds = 0.0;
  int max_milp_variables = 0;
  int max_milp_rows = 0;

  // Parallel-solver throughput: total branch-and-bound nodes over total
  // solver wall-clock (0 when no solver time was recorded).
  int64_t total_milp_nodes = 0;
  double solver_nodes_per_second = 0.0;
  int max_milp_queue_depth = 0;
  int total_incumbent_improvements = 0;
  // Shard decomposition: total shards across solved cycles, mean shards per
  // sharded solve, and the largest sub-MILP seen (all zero with shards off).
  int64_t total_milp_shards = 0;
  double mean_milp_shards = 0.0;
  int max_milp_shard_vars = 0;
  // Expected-capacity cache: fraction of running-job survival lookups served
  // without a recompute (0 when the cache recorded no traffic).
  int64_t capacity_cache_hits = 0;
  int64_t capacity_cache_misses = 0;
  double capacity_cache_hit_rate = 0.0;
  // Valuation engine: Eq. 1 table-cache traffic and kernel evaluations
  // (all zero when the engine is off).
  int64_t valuation_cache_hits = 0;
  int64_t valuation_cache_misses = 0;
  double valuation_cache_hit_rate = 0.0;
  int64_t valuation_kernel_calls = 0;

  // Fault-injection observability (all zero when chaos is off).
  int tasks_killed_by_faults = 0;
  int fault_node_events = 0;
  int stalled_cycles = 0;
  // Fraction of cluster space-time spent with nodes crashed.
  double node_downtime_fraction = 0.0;
  // Machine-hours of occupancy lost to fault kills (work that must be redone).
  double rework_machine_hours = 0.0;
  // rework / (rework + completed work): the share of consumed cluster time
  // that produced nothing. 0 when nothing ran.
  double rework_ratio = 0.0;
  // Goodput per available machine-hour: completed work over cluster
  // space-time actually up (nominal minus downtime). Separates "the scheduler
  // got worse" from "there was less cluster" under churn.
  double goodput_per_available_hour = 0.0;
};

// Aggregates a simulation run into the paper's success metrics.
RunMetrics ComputeMetrics(const SimResult& result, const std::string& system_name);

// SLO miss rate bucketed by deadline slack (useful to see where a scheduler
// loses: tight-slack jobs are the hard ones).
struct SlackBucketMetrics {
  double slack_low = 0.0;   // Inclusive, percent.
  double slack_high = 0.0;  // Exclusive, percent.
  int jobs = 0;
  int missed = 0;
  double miss_rate_percent = 0.0;
};
std::vector<SlackBucketMetrics> MissBySlack(const SimResult& result,
                                            const std::vector<double>& bucket_edges);

}  // namespace threesigma

#endif  // SRC_METRICS_METRICS_H_
