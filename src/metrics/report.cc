#include "src/metrics/report.h"

#include <ostream>

namespace threesigma {
namespace {

const char* StatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kPending:
      return "pending";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kAbandoned:
      return "abandoned";
    case JobStatus::kUnfinished:
      return "unfinished";
  }
  return "unknown";
}

}  // namespace

void WriteJobRecordsCsv(std::ostream& os, const std::vector<JobRecord>& jobs) {
  os << "id,user,name,type,tasks,submit,true_runtime,deadline,status,start,finish,"
        "group,preemptions,fault_kills,completed_work,missed_deadline\n";
  for (const JobRecord& job : jobs) {
    os << job.spec.id << "," << job.spec.user << "," << job.spec.name << ","
       << (job.spec.is_slo() ? "slo" : "be") << "," << job.spec.num_tasks << ","
       << job.spec.submit_time << "," << job.spec.true_runtime << ","
       << (job.spec.deadline == kNever ? -1.0 : job.spec.deadline) << ","
       << StatusName(job.status) << "," << job.start_time << "," << job.finish_time << ","
       << job.group << "," << job.preemptions << "," << job.fault_kills << ","
       << job.completed_work << "," << (job.MissedDeadline() ? 1 : 0) << "\n";
  }
}

void WriteRunMetricsCsv(std::ostream& os, const std::vector<RunMetrics>& runs) {
  os << "system,slo_jobs,slo_censored,be_jobs,slo_missed,slo_miss_rate_percent,"
        "slo_completed,be_completed,abandoned,unfinished,preemptions,"
        "goodput_machine_hours,slo_goodput_machine_hours,be_goodput_machine_hours,"
        "mean_be_latency_s,p50_be_latency_s,p90_be_latency_s,p99_be_latency_s,"
        "mean_cycle_s,max_cycle_s,mean_solver_s,max_solver_s,max_milp_variables,"
        "max_milp_rows,total_milp_nodes,solver_nodes_per_s,max_milp_queue_depth,"
        "incumbent_improvements,capacity_cache_hits,capacity_cache_misses,"
        "capacity_cache_hit_rate,tasks_killed_by_faults,fault_node_events,"
        "stalled_cycles,node_downtime_fraction,rework_machine_hours,rework_ratio,"
        "goodput_per_available_hour,valuation_cache_hits,valuation_cache_misses,"
        "valuation_cache_hit_rate,valuation_kernel_calls,total_milp_shards,"
        "mean_milp_shards,max_milp_shard_vars\n";
  for (const RunMetrics& m : runs) {
    os << m.system << "," << m.slo_jobs << "," << m.slo_censored << "," << m.be_jobs << ","
       << m.slo_missed << "," << m.slo_miss_rate_percent << "," << m.slo_completed << ","
       << m.be_completed << "," << m.abandoned << "," << m.unfinished << ","
       << m.preemptions << "," << m.goodput_machine_hours << ","
       << m.slo_goodput_machine_hours << "," << m.be_goodput_machine_hours << ","
       << m.mean_be_latency_seconds << "," << m.p50_be_latency_seconds << ","
       << m.p90_be_latency_seconds << "," << m.p99_be_latency_seconds << ","
       << m.mean_cycle_seconds << "," << m.max_cycle_seconds << "," << m.mean_solver_seconds
       << "," << m.max_solver_seconds << "," << m.max_milp_variables << ","
       << m.max_milp_rows << "," << m.total_milp_nodes << "," << m.solver_nodes_per_second
       << "," << m.max_milp_queue_depth << "," << m.total_incumbent_improvements << ","
       << m.capacity_cache_hits << "," << m.capacity_cache_misses << ","
       << m.capacity_cache_hit_rate << "," << m.tasks_killed_by_faults << ","
       << m.fault_node_events << "," << m.stalled_cycles << ","
       << m.node_downtime_fraction << "," << m.rework_machine_hours << ","
       << m.rework_ratio << "," << m.goodput_per_available_hour << ","
       << m.valuation_cache_hits << "," << m.valuation_cache_misses << ","
       << m.valuation_cache_hit_rate << "," << m.valuation_kernel_calls << ","
       << m.total_milp_shards << "," << m.mean_milp_shards << ","
       << m.max_milp_shard_vars << "\n";
  }
}

}  // namespace threesigma
