// Cluster timeline reconstruction and ASCII rendering.
//
// Rebuilds per-group node occupancy over time from a simulation's job
// records (each completed/preempted run is a rectangle in cluster
// space-time — the §4.3.1 picture), computes utilization statistics, and
// renders a terminal-friendly utilization strip per node group. Used by the
// examples and by tests that assert occupancy never exceeds capacity.

#ifndef SRC_METRICS_TIMELINE_H_
#define SRC_METRICS_TIMELINE_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/simulator.h"

namespace threesigma {

class ClusterTimeline {
 public:
  // Samples occupancy on a uniform grid of `samples` points covering
  // [0, result.end_time].
  ClusterTimeline(const ClusterConfig& cluster, const SimResult& result, int samples = 80);

  int samples() const { return static_cast<int>(grid_.size()); }
  Time end_time() const { return end_time_; }
  // Nodes busy in `group` at sample `i`.
  int occupancy(int group, int i) const { return occupancy_[group][i]; }
  // Busy fraction of the whole cluster at sample `i`.
  double UtilizationAt(int i) const;
  // Time-averaged utilization of the whole cluster over the run.
  double MeanUtilization() const;
  // Time-averaged utilization of one group.
  double MeanGroupUtilization(int group) const;

  // One line per group: '.' (idle) through '#' (full), e.g.
  //   group-0 |..:=+##=:...|  63% mean
  std::string RenderAscii() const;

 private:
  const ClusterConfig& cluster_;
  Time end_time_;
  std::vector<Time> grid_;
  std::vector<std::vector<int>> occupancy_;  // [group][sample]
};

}  // namespace threesigma

#endif  // SRC_METRICS_TIMELINE_H_
