#include "src/metrics/metrics.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace threesigma {

RunMetrics ComputeMetrics(const SimResult& result, const std::string& system_name) {
  RunMetrics m;
  m.system = system_name;
  m.preemptions = result.total_preemptions;
  m.rejected_placements = result.rejected_placements;

  double be_latency_sum = 0.0;
  std::vector<double> be_latencies;
  for (const JobRecord& job : result.jobs) {
    const bool completed = job.status == JobStatus::kCompleted;
    if (job.status == JobStatus::kAbandoned) {
      ++m.abandoned;
    }
    if (job.status == JobStatus::kUnfinished) {
      ++m.unfinished;
    }
    if (job.spec.is_slo()) {
      // Right-censoring: a job that neither completed nor saw its deadline
      // pass before the simulation stopped is undecided — it belongs to
      // neither the hit nor the miss count. Abandoned jobs are decided (the
      // scheduler permanently gave up on them), so they always count.
      if (!completed && job.status != JobStatus::kAbandoned &&
          job.spec.deadline > result.end_time) {
        ++m.slo_censored;
        continue;
      }
      ++m.slo_jobs;
      if (completed) {
        ++m.slo_completed;
        m.slo_goodput_machine_hours += MachineHours(1.0, job.completed_work);
      }
      if (job.MissedDeadline()) {
        ++m.slo_missed;
      }
    } else {
      ++m.be_jobs;
      if (completed) {
        ++m.be_completed;
        m.be_goodput_machine_hours += MachineHours(1.0, job.completed_work);
        be_latency_sum += job.finish_time - job.spec.submit_time;
        be_latencies.push_back(job.finish_time - job.spec.submit_time);
      }
    }
  }
  m.goodput_machine_hours = m.slo_goodput_machine_hours + m.be_goodput_machine_hours;
  if (m.slo_jobs > 0) {
    m.slo_miss_rate_percent = 100.0 * m.slo_missed / m.slo_jobs;
  }
  if (m.be_completed > 0) {
    m.mean_be_latency_seconds = be_latency_sum / m.be_completed;
    m.p50_be_latency_seconds = Quantile(be_latencies, 0.5);
    m.p90_be_latency_seconds = Quantile(be_latencies, 0.9);
    m.p99_be_latency_seconds = Quantile(be_latencies, 0.99);
  }

  double cycle_sum = 0.0;
  double solver_sum = 0.0;
  int64_t sharded_solves = 0;
  for (const CycleStats& c : result.cycles) {
    cycle_sum += c.cycle_seconds;
    solver_sum += c.solver_seconds;
    m.max_cycle_seconds = std::max(m.max_cycle_seconds, c.cycle_seconds);
    m.max_solver_seconds = std::max(m.max_solver_seconds, c.solver_seconds);
    m.max_milp_variables = std::max(m.max_milp_variables, c.milp_variables);
    m.max_milp_rows = std::max(m.max_milp_rows, c.milp_rows);
    m.total_milp_nodes += c.milp_nodes;
    m.max_milp_queue_depth = std::max(m.max_milp_queue_depth, c.milp_max_queue_depth);
    m.total_incumbent_improvements += c.milp_incumbent_improvements;
    m.capacity_cache_hits += c.capacity_cache_hits;
    m.capacity_cache_misses += c.capacity_cache_misses;
    m.valuation_cache_hits += c.valuation_cache_hits;
    m.valuation_cache_misses += c.valuation_cache_misses;
    m.valuation_kernel_calls += c.valuation_kernel_calls;
    m.total_milp_shards += c.milp_shards;
    m.max_milp_shard_vars = std::max(m.max_milp_shard_vars, c.milp_max_shard_vars);
    if (c.milp_shards > 0) {
      ++sharded_solves;
    }
  }
  if (sharded_solves > 0) {
    m.mean_milp_shards =
        static_cast<double>(m.total_milp_shards) / static_cast<double>(sharded_solves);
  }
  if (!result.cycles.empty()) {
    m.mean_cycle_seconds = cycle_sum / static_cast<double>(result.cycles.size());
    m.mean_solver_seconds = solver_sum / static_cast<double>(result.cycles.size());
  }
  if (solver_sum > 0.0) {
    m.solver_nodes_per_second = static_cast<double>(m.total_milp_nodes) / solver_sum;
  }
  const int64_t cache_total = m.capacity_cache_hits + m.capacity_cache_misses;
  if (cache_total > 0) {
    m.capacity_cache_hit_rate = static_cast<double>(m.capacity_cache_hits) /
                                static_cast<double>(cache_total);
  }
  const int64_t val_total = m.valuation_cache_hits + m.valuation_cache_misses;
  if (val_total > 0) {
    m.valuation_cache_hit_rate = static_cast<double>(m.valuation_cache_hits) /
                                 static_cast<double>(val_total);
  }

  m.tasks_killed_by_faults = result.tasks_killed_by_faults;
  m.fault_node_events = result.fault_node_events;
  m.stalled_cycles = result.stalled_cycles;
  m.node_downtime_fraction = result.node_downtime_fraction;
  m.rework_machine_hours = MachineHours(1.0, result.rework_node_seconds);
  const double consumed = m.rework_machine_hours + m.goodput_machine_hours;
  if (consumed > 0.0) {
    m.rework_ratio = m.rework_machine_hours / consumed;
  }
  if (result.available_node_seconds > 0.0) {
    m.goodput_per_available_hour =
        m.goodput_machine_hours / MachineHours(1.0, result.available_node_seconds);
  }
  return m;
}

std::vector<SlackBucketMetrics> MissBySlack(const SimResult& result,
                                            const std::vector<double>& bucket_edges) {
  TS_CHECK_GE(bucket_edges.size(), 2u);
  std::vector<SlackBucketMetrics> buckets;
  for (size_t i = 0; i + 1 < bucket_edges.size(); ++i) {
    TS_CHECK_LT(bucket_edges[i], bucket_edges[i + 1]);
    SlackBucketMetrics b;
    b.slack_low = bucket_edges[i];
    b.slack_high = bucket_edges[i + 1];
    buckets.push_back(b);
  }
  for (const JobRecord& job : result.jobs) {
    if (!job.spec.is_slo()) {
      continue;
    }
    if (job.status != JobStatus::kCompleted && job.status != JobStatus::kAbandoned &&
        job.spec.deadline > result.end_time) {
      continue;  // Censored, as in ComputeMetrics.
    }
    const double slack = job.spec.DeadlineSlackPercent();
    for (SlackBucketMetrics& b : buckets) {
      if (slack >= b.slack_low && slack < b.slack_high) {
        ++b.jobs;
        if (job.MissedDeadline()) {
          ++b.missed;
        }
        break;
      }
    }
  }
  for (SlackBucketMetrics& b : buckets) {
    if (b.jobs > 0) {
      b.miss_rate_percent = 100.0 * b.missed / b.jobs;
    }
  }
  return buckets;
}

}  // namespace threesigma
