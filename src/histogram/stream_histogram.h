// Streaming histogram after Ben-Haim & Tom-Tov (JMLR 2010), the sketch the
// paper cites ([1]) for maintaining approximate runtime histograms in constant
// memory per feature-value (§4.1, "maximum of 80 bins").
//
// The histogram is a set of (centroid, count) bins kept sorted by centroid.
// Each update inserts a unit bin and, when the bin budget is exceeded, merges
// the two adjacent bins with the smallest centroid gap. Two histograms can be
// merged with the same rule, and approximate ranks/quantiles are computed by
// trapezoidal interpolation between centroids.

#ifndef SRC_HISTOGRAM_STREAM_HISTOGRAM_H_
#define SRC_HISTOGRAM_STREAM_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

class StreamHistogram {
 public:
  struct Bin {
    double centroid;
    double count;
  };

  // `max_bins` bounds memory; the paper uses 80.
  explicit StreamHistogram(size_t max_bins = 80);

  // Inserts one observation.
  void Update(double value);
  // Merges another histogram into this one (same bin budget applies).
  void Merge(const StreamHistogram& other);

  // Approximate number of observations <= value (the "sum" procedure).
  double EstimateCountAtMost(double value) const;
  // Approximate q-quantile, q in [0, 1].
  double Quantile(double q) const;

  // Exact state restoration (predict/predictor_io.h). `bins` must be sorted
  // by centroid with positive counts.
  static StreamHistogram Restore(size_t max_bins, double min, double max,
                                 std::vector<Bin> bins);

  double total_count() const { return total_count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  bool empty() const { return bins_.empty(); }
  size_t bin_count() const { return bins_.size(); }
  size_t max_bins() const { return max_bins_; }
  const std::vector<Bin>& bins() const { return bins_; }

  // Snapshot codec hooks: raw payload, composable into a parent section.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  // Inserts a pre-weighted bin keeping the centroid order, then shrinks back
  // to the bin budget.
  void InsertBin(double centroid, double count);
  void ShrinkToBudget();

  size_t max_bins_;
  std::vector<Bin> bins_;  // Sorted by centroid, strictly increasing.
  double total_count_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace threesigma

#endif  // SRC_HISTOGRAM_STREAM_HISTOGRAM_H_
