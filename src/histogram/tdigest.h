// t-digest quantile sketch (Dunning & Ertl), merging variant.
//
// An alternative to the Ben-Haim & Tom-Tov streaming histogram the paper
// uses for runtime distributions. The t-digest bounds centroid weights by a
// quantile-dependent scale function, so tails get finer resolution than the
// middle — attractive for heavy-tailed runtimes. bench/abl06_sketches
// compares the two sketches' quantile accuracy and ingest cost on
// runtime-like streams; EmpiricalDistribution::FromTDigest lets either back
// the scheduler.

#ifndef SRC_HISTOGRAM_TDIGEST_H_
#define SRC_HISTOGRAM_TDIGEST_H_

#include <cstddef>
#include <vector>

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

class TDigest {
 public:
  struct Centroid {
    double mean;
    double weight;
  };

  // `compression` (δ) bounds the number of centroids to roughly 2δ.
  explicit TDigest(double compression = 100.0);

  void Update(double value, double weight = 1.0);
  void Merge(const TDigest& other);

  // Approximate q-quantile, q in [0, 1].
  double Quantile(double q) const;
  // Approximate P(X <= value).
  double CdfAtMost(double value) const;

  double total_weight() const { return total_weight_ + buffered_weight_; }
  double min() const { return min_; }
  double max() const { return max_; }
  bool empty() const { return total_weight() == 0.0; }
  // Compresses the buffer and returns the centroid list.
  const std::vector<Centroid>& centroids() const;
  size_t centroid_count() const { return centroids().size(); }

  // Snapshot codec hooks. SaveState compresses the buffer first so the saved
  // state is canonical; a restored digest therefore answers every query
  // identically to the saved one.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  // Scale function k(q) and its inverse control per-centroid capacity.
  double WeightLimit(double q_left) const;
  void Compress() const;

  double compression_;
  double min_ = 0.0;
  double max_ = 0.0;

  // Merged state + an insertion buffer compressed lazily (mutable: queries
  // compress on demand but are logically const).
  mutable std::vector<Centroid> centroids_;
  mutable std::vector<Centroid> buffer_;
  mutable double total_weight_ = 0.0;
  mutable double buffered_weight_ = 0.0;
};

}  // namespace threesigma

#endif  // SRC_HISTOGRAM_TDIGEST_H_
