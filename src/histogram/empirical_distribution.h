// Empirical runtime distributions.
//
// 3σSched consumes runtime distributions through this type. A distribution is
// a finite set of weighted atoms (runtime, probability) sorted by runtime —
// exactly what an 80-bin streaming histogram provides. Atoms make all of the
// scheduler's math exact and cheap:
//   - CDF / survival queries are prefix sums (Eq. 3's 1 − CDF(t)),
//   - the elapsed-time conditional update is an exact renormalization of the
//     surviving atoms (Eq. 2),
//   - expected utility (Eq. 1) is a weighted sum over atoms.

#ifndef SRC_HISTOGRAM_EMPIRICAL_DISTRIBUTION_H_
#define SRC_HISTOGRAM_EMPIRICAL_DISTRIBUTION_H_

#include <functional>
#include <vector>

#include "src/histogram/stream_histogram.h"
#include "src/histogram/tdigest.h"

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

class EmpiricalDistribution {
 public:
  struct Atom {
    double value;
    double probability;
  };

  EmpiricalDistribution() = default;

  // A degenerate (point-mass) distribution; how point estimates are plumbed
  // through the distribution-based machinery (3SigmaNoDist, PointPerfEst...).
  static EmpiricalDistribution Point(double value);
  // Equal-weight atoms, one per sample (duplicates merge).
  static EmpiricalDistribution FromSamples(std::vector<double> samples);
  // One atom per histogram bin, weighted by bin count.
  static EmpiricalDistribution FromHistogram(const StreamHistogram& hist);
  // One atom per t-digest centroid, weighted by centroid weight (sketch
  // ablation; see histogram/tdigest.h).
  static EmpiricalDistribution FromTDigest(const TDigest& digest);
  // Discretized normal truncated at zero; used by the Fig. 9 perturbation
  // study, which feeds the scheduler ~N(runtime·(1+shift), runtime·CoV).
  static EmpiricalDistribution FromNormal(double mean, double stddev, size_t atoms = 41);
  // Discretized uniform on [lo, hi]; the paper's §2.3/Fig. 5 worked example.
  static EmpiricalDistribution FromUniform(double lo, double hi, size_t atoms = 41);

  bool empty() const { return atoms_.empty(); }
  size_t size() const { return atoms_.size(); }
  const std::vector<Atom>& atoms() const { return atoms_; }

  // P(T <= t).
  double CdfAtMost(double t) const;
  // P(T > t) = 1 − CDF(t): the probability the job still holds resources at
  // elapsed time t (Eq. 3).
  double Survival(double t) const;
  double Mean() const;
  // Standard deviation of the atom distribution (population form).
  double StdDev() const;
  // Smallest value v with P(T <= v) >= q.
  double Quantile(double q) const;
  // Largest observed runtime; running past it is the under-estimate signal
  // (§4.2.1).
  double MaxValue() const;
  double MinValue() const;

  // Zero-copy form of the Eq. 2 update: the contiguous suffix of atoms with
  // value > elapsed (atoms are sorted, so the survivors are a suffix) plus
  // their unnormalized mass. A view into this distribution's storage, valid
  // only while the distribution is alive and unmodified. `empty()` covers
  // both edge cases ConditionalGivenExceeds must handle: elapsed at/past the
  // last atom (no survivors) and a zero-mass tail (survivors exist but carry
  // no probability — possible for snapshot-restored atom sets, which are
  // adopted verbatim). A NaN elapsed compares false against every value, so
  // no atom qualifies as a survivor and the view is empty.
  struct TailView {
    const Atom* first = nullptr;  // Suffix start; nullptr when count == 0.
    size_t count = 0;             // Surviving atoms.
    double mass = 0.0;            // Unnormalized survivor mass.
    bool empty() const { return count == 0 || !(mass > 0.0); }
  };
  TailView ConditionalTail(double elapsed) const;

  // The Eq. 2 update: distribution of T given T > elapsed. Returns an empty
  // distribution when no atom survives (the job outran its entire history —
  // the under-estimate case the caller must handle) or when the surviving
  // tail carries zero mass (renormalizing it would divide by zero).
  EmpiricalDistribution ConditionalGivenExceeds(double elapsed) const;

  // E[f(T)] — the Eq. 1 workhorse. The template form binds any callable
  // without the allocation + indirect call of a std::function (function_ref
  // semantics); the std::function overload remains as a thin wrapper for
  // callers that already hold one. Overload resolution prefers the exact
  // non-template match for a std::function argument and the template for
  // everything else (lambdas, function pointers, functors).
  template <typename F>
  double ExpectedValue(const F& f) const {
    double total = 0.0;
    for (const Atom& a : atoms_) {
      total += f(a.value) * a.probability;
    }
    return total;
  }
  double ExpectedValue(const std::function<double(double)>& f) const;

  // Returns a copy with every atom value multiplied by `factor` (> 0); models
  // the workload's slower non-preferred resources (jobs run 1.5× longer).
  EmpiricalDistribution Scaled(double factor) const;
  // Returns a copy with every atom shifted by `delta` (values clamped >= 0).
  EmpiricalDistribution Shifted(double delta) const;

  // Snapshot codec hooks. RestoreState adopts the atoms verbatim — no
  // renormalization — so a restored distribution is bit-identical.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

 private:
  static EmpiricalDistribution FromAtoms(std::vector<Atom> atoms);

  std::vector<Atom> atoms_;  // Sorted by value; probabilities sum to 1.
};

}  // namespace threesigma

#endif  // SRC_HISTOGRAM_EMPIRICAL_DISTRIBUTION_H_
