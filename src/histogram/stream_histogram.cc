#include "src/histogram/stream_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

StreamHistogram::StreamHistogram(size_t max_bins) : max_bins_(max_bins) {
  TS_CHECK_GE(max_bins, 2u);
  bins_.reserve(max_bins + 1);
}

StreamHistogram StreamHistogram::Restore(size_t max_bins, double min, double max,
                                         std::vector<Bin> bins) {
  StreamHistogram h(max_bins);
  TS_CHECK_LE(bins.size(), max_bins);
  double total = 0.0;
  for (size_t i = 0; i < bins.size(); ++i) {
    TS_CHECK_GT(bins[i].count, 0.0);
    if (i > 0) {
      TS_CHECK_LT(bins[i - 1].centroid, bins[i].centroid);
    }
    total += bins[i].count;
  }
  h.bins_ = std::move(bins);
  h.total_count_ = total;
  h.min_ = min;
  h.max_ = max;
  return h;
}

void StreamHistogram::Update(double value) {
  if (bins_.empty()) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  InsertBin(value, 1.0);
  total_count_ += 1.0;
}

void StreamHistogram::Merge(const StreamHistogram& other) {
  if (other.empty()) {
    return;
  }
  if (bins_.empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (const Bin& b : other.bins_) {
    InsertBin(b.centroid, b.count);
  }
  total_count_ += other.total_count_;
}

void StreamHistogram::InsertBin(double centroid, double count) {
  auto it = std::lower_bound(bins_.begin(), bins_.end(), centroid,
                             [](const Bin& b, double v) { return b.centroid < v; });
  if (it != bins_.end() && it->centroid == centroid) {
    it->count += count;
  } else {
    bins_.insert(it, Bin{centroid, count});
    ShrinkToBudget();
  }
}

void StreamHistogram::ShrinkToBudget() {
  while (bins_.size() > max_bins_) {
    // Merge the adjacent pair with the smallest centroid gap.
    size_t best = 0;
    double best_gap = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < bins_.size(); ++i) {
      const double gap = bins_[i + 1].centroid - bins_[i].centroid;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    Bin& lo = bins_[best];
    const Bin& hi = bins_[best + 1];
    const double merged_count = lo.count + hi.count;
    lo.centroid = (lo.centroid * lo.count + hi.centroid * hi.count) / merged_count;
    lo.count = merged_count;
    bins_.erase(bins_.begin() + static_cast<ptrdiff_t>(best) + 1);
  }
}

double StreamHistogram::EstimateCountAtMost(double value) const {
  if (bins_.empty()) {
    return 0.0;
  }
  if (value < bins_.front().centroid) {
    // Below the first centroid: attribute none of the first bin. (The true
    // minimum may be below the centroid, but the sketch does not retain it.)
    return value < min_ ? 0.0 : bins_.front().count * 0.5 *
                                    (value - min_) / std::max(bins_.front().centroid - min_, 1e-12);
  }
  if (value >= bins_.back().centroid) {
    if (value >= max_) {
      return total_count_;
    }
    // Interpolate the last half-bin between its centroid and the max.
    const double span = std::max(max_ - bins_.back().centroid, 1e-12);
    const double frac = (value - bins_.back().centroid) / span;
    return total_count_ - bins_.back().count * 0.5 * (1.0 - frac);
  }
  // Ben-Haim & Tom-Tov "sum" procedure: half of every bin strictly below,
  // plus the trapezoid between the straddling centroids.
  double below = 0.0;
  size_t i = 0;
  while (i + 1 < bins_.size() && bins_[i + 1].centroid <= value) {
    below += bins_[i].count;
    ++i;
  }
  const Bin& bi = bins_[i];
  const Bin& bj = bins_[i + 1];
  const double span = std::max(bj.centroid - bi.centroid, 1e-12);
  const double frac = (value - bi.centroid) / span;
  // Interpolated count at `value` inside the trapezoid [bi, bj].
  const double mb = bi.count + (bj.count - bi.count) * frac;
  const double trapezoid = (bi.count + mb) * frac / 2.0;
  // All bins before bi contribute fully; bi contributes half of itself.
  double total_before = 0.0;
  for (size_t k = 0; k < i; ++k) {
    total_before += bins_[k].count;
  }
  return total_before + bi.count / 2.0 + trapezoid;
}

double StreamHistogram::Quantile(double q) const {
  TS_CHECK(!bins_.empty());
  TS_CHECK_GE(q, 0.0);
  TS_CHECK_LE(q, 1.0);
  const double target = q * total_count_;
  // Binary search the value whose estimated rank equals target.
  double lo = min_;
  double hi = max_;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (EstimateCountAtMost(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

void StreamHistogram::SaveState(SnapshotWriter& writer) const {
  writer.WriteVarU64(max_bins_);
  writer.WriteDouble(total_count_);
  writer.WriteDouble(min_);
  writer.WriteDouble(max_);
  writer.WriteVarU64(bins_.size());
  for (const Bin& b : bins_) {
    writer.WriteDouble(b.centroid);
    writer.WriteDouble(b.count);
  }
}

void StreamHistogram::RestoreState(SnapshotReader& reader) {
  max_bins_ = reader.ReadVarU64();
  total_count_ = reader.ReadDouble();
  min_ = reader.ReadDouble();
  max_ = reader.ReadDouble();
  const uint64_t n = reader.ReadVarCount(16);  // Each bin is two doubles.
  bins_.clear();
  bins_.reserve(reader.ok() ? n : 0);
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    Bin b;
    b.centroid = reader.ReadDouble();
    b.count = reader.ReadDouble();
    bins_.push_back(b);
  }
}

}  // namespace threesigma
