#include "src/histogram/empirical_distribution.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

EmpiricalDistribution EmpiricalDistribution::FromAtoms(std::vector<Atom> atoms) {
  std::sort(atoms.begin(), atoms.end(),
            [](const Atom& a, const Atom& b) { return a.value < b.value; });
  // Merge duplicates and normalize mass to 1.
  std::vector<Atom> merged;
  merged.reserve(atoms.size());
  double total = 0.0;
  for (const Atom& a : atoms) {
    TS_CHECK_GE(a.probability, 0.0);
    if (a.probability == 0.0) {
      continue;
    }
    total += a.probability;
    if (!merged.empty() && merged.back().value == a.value) {
      merged.back().probability += a.probability;
    } else {
      merged.push_back(a);
    }
  }
  TS_CHECK_GT(total, 0.0);
  for (Atom& a : merged) {
    a.probability /= total;
  }
  EmpiricalDistribution dist;
  dist.atoms_ = std::move(merged);
  return dist;
}

EmpiricalDistribution EmpiricalDistribution::Point(double value) {
  return FromAtoms({Atom{value, 1.0}});
}

EmpiricalDistribution EmpiricalDistribution::FromSamples(std::vector<double> samples) {
  TS_CHECK(!samples.empty());
  std::vector<Atom> atoms;
  atoms.reserve(samples.size());
  for (double s : samples) {
    atoms.push_back(Atom{s, 1.0});
  }
  return FromAtoms(std::move(atoms));
}

EmpiricalDistribution EmpiricalDistribution::FromHistogram(const StreamHistogram& hist) {
  TS_CHECK(!hist.empty());
  std::vector<Atom> atoms;
  atoms.reserve(hist.bin_count());
  for (const StreamHistogram::Bin& b : hist.bins()) {
    atoms.push_back(Atom{b.centroid, b.count});
  }
  return FromAtoms(std::move(atoms));
}

EmpiricalDistribution EmpiricalDistribution::FromTDigest(const TDigest& digest) {
  TS_CHECK(!digest.empty());
  std::vector<Atom> atoms;
  atoms.reserve(digest.centroid_count());
  for (const TDigest::Centroid& c : digest.centroids()) {
    atoms.push_back(Atom{c.mean, c.weight});
  }
  return FromAtoms(std::move(atoms));
}

EmpiricalDistribution EmpiricalDistribution::FromNormal(double mean, double stddev,
                                                        size_t atoms) {
  TS_CHECK_GE(atoms, 1u);
  if (stddev <= 0.0) {
    return Point(std::max(mean, 0.0));
  }
  // Equal-probability discretization: atom i at the (i + 0.5)/n quantile of
  // N(mean, stddev), truncated below zero. This preserves the shape (and the
  // tails matter: Fig. 9 shows wide distributions hedge large shifts).
  std::vector<Atom> out;
  out.reserve(atoms);
  for (size_t i = 0; i < atoms; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(atoms);
    // Inverse normal CDF via the Acklam rational approximation.
    const double a1 = -39.69683028665376, a2 = 220.9460984245205, a3 = -275.9285104469687;
    const double a4 = 138.3577518672690, a5 = -30.66479806614716, a6 = 2.506628277459239;
    const double b1 = -54.47609879822406, b2 = 161.5858368580409, b3 = -155.6989798598866;
    const double b4 = 66.80131188771972, b5 = -13.28068155288572;
    const double c1 = -0.007784894002430293, c2 = -0.3223964580411365, c3 = -2.400758277161838;
    const double c4 = -2.549732539343734, c5 = 4.374664141464968, c6 = 2.938163982698783;
    const double d1 = 0.007784695709041462, d2 = 0.3224671290700398, d3 = 2.445134137142996;
    const double d4 = 3.754408661907416;
    const double plow = 0.02425;
    double z;
    if (q < plow) {
      const double r = std::sqrt(-2.0 * std::log(q));
      z = (((((c1 * r + c2) * r + c3) * r + c4) * r + c5) * r + c6) /
          ((((d1 * r + d2) * r + d3) * r + d4) * r + 1.0);
    } else if (q <= 1.0 - plow) {
      const double r = q - 0.5;
      const double s = r * r;
      z = (((((a1 * s + a2) * s + a3) * s + a4) * s + a5) * s + a6) * r /
          (((((b1 * s + b2) * s + b3) * s + b4) * s + b5) * s + 1.0);
    } else {
      const double r = std::sqrt(-2.0 * std::log(1.0 - q));
      z = -(((((c1 * r + c2) * r + c3) * r + c4) * r + c5) * r + c6) /
          ((((d1 * r + d2) * r + d3) * r + d4) * r + 1.0);
    }
    const double value = std::max(mean + stddev * z, 0.0);
    out.push_back(Atom{value, 1.0});
  }
  return FromAtoms(std::move(out));
}

EmpiricalDistribution EmpiricalDistribution::FromUniform(double lo, double hi, size_t atoms) {
  TS_CHECK_LE(lo, hi);
  TS_CHECK_GE(atoms, 1u);
  if (lo == hi) {
    return Point(lo);
  }
  std::vector<Atom> out;
  out.reserve(atoms);
  for (size_t i = 0; i < atoms; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(atoms);
    out.push_back(Atom{lo + q * (hi - lo), 1.0});
  }
  return FromAtoms(std::move(out));
}

double EmpiricalDistribution::CdfAtMost(double t) const {
  double mass = 0.0;
  for (const Atom& a : atoms_) {
    if (a.value > t) {
      break;
    }
    mass += a.probability;
  }
  return mass;
}

double EmpiricalDistribution::Survival(double t) const { return 1.0 - CdfAtMost(t); }

double EmpiricalDistribution::Mean() const {
  double m = 0.0;
  for (const Atom& a : atoms_) {
    m += a.value * a.probability;
  }
  return m;
}

double EmpiricalDistribution::StdDev() const {
  const double mean = Mean();
  double var = 0.0;
  for (const Atom& a : atoms_) {
    var += (a.value - mean) * (a.value - mean) * a.probability;
  }
  return std::sqrt(std::max(var, 0.0));
}

double EmpiricalDistribution::Quantile(double q) const {
  TS_CHECK(!atoms_.empty());
  // Tolerate floating-point overshoot from CdfAtMost (probabilities sum to
  // 1 ± ulp) while still rejecting genuinely out-of-range inputs.
  TS_CHECK_GE(q, -1e-9);
  TS_CHECK_LE(q, 1.0 + 1e-9);
  q = std::clamp(q, 0.0, 1.0);
  double mass = 0.0;
  for (const Atom& a : atoms_) {
    mass += a.probability;
    if (mass >= q - 1e-12) {
      return a.value;
    }
  }
  return atoms_.back().value;
}

double EmpiricalDistribution::MaxValue() const {
  TS_CHECK(!atoms_.empty());
  return atoms_.back().value;
}

double EmpiricalDistribution::MinValue() const {
  TS_CHECK(!atoms_.empty());
  return atoms_.front().value;
}

EmpiricalDistribution::TailView EmpiricalDistribution::ConditionalTail(double elapsed) const {
  TailView view;
  // Atoms are sorted ascending, so the survivors (value > elapsed) are a
  // contiguous suffix. A NaN elapsed makes every `value > elapsed` false, so
  // nothing survives and the view is empty.
  size_t begin = 0;
  while (begin < atoms_.size() && !(atoms_[begin].value > elapsed)) {
    ++begin;
  }
  if (begin == atoms_.size()) {
    return view;
  }
  view.first = &atoms_[begin];
  view.count = atoms_.size() - begin;
  for (size_t i = begin; i < atoms_.size(); ++i) {
    view.mass += atoms_[i].probability;
  }
  return view;
}

EmpiricalDistribution EmpiricalDistribution::ConditionalGivenExceeds(double elapsed) const {
  const TailView view = ConditionalTail(elapsed);
  if (view.empty()) {
    // No survivors, or a zero-mass tail (verbatim-restored atom sets may
    // carry zero-probability atoms): renormalizing would divide by zero.
    return EmpiricalDistribution();
  }
  return FromAtoms(std::vector<Atom>(view.first, view.first + view.count));
}

double EmpiricalDistribution::ExpectedValue(const std::function<double(double)>& f) const {
  return ExpectedValue<std::function<double(double)>>(f);
}

EmpiricalDistribution EmpiricalDistribution::Scaled(double factor) const {
  TS_CHECK_GT(factor, 0.0);
  std::vector<Atom> out = atoms_;
  for (Atom& a : out) {
    a.value *= factor;
  }
  return FromAtoms(std::move(out));
}

EmpiricalDistribution EmpiricalDistribution::Shifted(double delta) const {
  std::vector<Atom> out = atoms_;
  for (Atom& a : out) {
    a.value = std::max(a.value + delta, 0.0);
  }
  return FromAtoms(std::move(out));
}

void EmpiricalDistribution::SaveState(SnapshotWriter& writer) const {
  writer.WriteVarU64(atoms_.size());
  for (const Atom& a : atoms_) {
    writer.WriteDouble(a.value);
    writer.WriteDouble(a.probability);
  }
}

void EmpiricalDistribution::RestoreState(SnapshotReader& reader) {
  const uint64_t n = reader.ReadVarCount(16);  // Each atom is two doubles.
  atoms_.clear();
  atoms_.reserve(reader.ok() ? n : 0);
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    Atom a;
    a.value = reader.ReadDouble();
    a.probability = reader.ReadDouble();
    atoms_.push_back(a);
  }
}

}  // namespace threesigma
