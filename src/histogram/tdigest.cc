#include "src/histogram/tdigest.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {

TDigest::TDigest(double compression) : compression_(compression) {
  TS_CHECK_GE(compression, 10.0);
}

void TDigest::Update(double value, double weight) {
  TS_CHECK_GT(weight, 0.0);
  if (empty()) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buffer_.push_back(Centroid{value, weight});
  buffered_weight_ += weight;
  if (buffer_.size() >= static_cast<size_t>(4.0 * compression_)) {
    Compress();
  }
}

void TDigest::Merge(const TDigest& other) {
  if (other.empty()) {
    return;
  }
  if (empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  other.Compress();
  for (const Centroid& c : other.centroids_) {
    buffer_.push_back(c);
    buffered_weight_ += c.weight;
  }
  Compress();
}

double TDigest::WeightLimit(double q_left) const {
  // k1 scale function: k(q) = (δ/2π)·asin(2q−1). The capacity of a centroid
  // starting at quantile q_left is the weight that advances k by 1.
  const double k = compression_ / (2.0 * 3.14159265358979323846) *
                   std::asin(2.0 * std::clamp(q_left, 0.0, 1.0) - 1.0);
  const double k_next = k + 1.0;
  const double q_next =
      0.5 * (std::sin(k_next * 2.0 * 3.14159265358979323846 / compression_) + 1.0);
  return std::max((q_next - q_left) * (total_weight_ + buffered_weight_), 1.0);
}

void TDigest::Compress() const {
  if (buffer_.empty()) {
    return;
  }
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  all.insert(all.end(), centroids_.begin(), centroids_.end());
  all.insert(all.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  total_weight_ += buffered_weight_;
  buffered_weight_ = 0.0;
  std::sort(all.begin(), all.end(),
            [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });

  centroids_.clear();
  double cumulative = 0.0;  // Weight strictly before the open centroid.
  Centroid open = all.front();
  for (size_t i = 1; i < all.size(); ++i) {
    const double q_left = cumulative / total_weight_;
    if (open.weight + all[i].weight <= WeightLimit(q_left)) {
      // Absorb into the open centroid (weighted mean update).
      const double w = open.weight + all[i].weight;
      open.mean = (open.mean * open.weight + all[i].mean * all[i].weight) / w;
      open.weight = w;
    } else {
      cumulative += open.weight;
      centroids_.push_back(open);
      open = all[i];
    }
  }
  centroids_.push_back(open);
}

const std::vector<TDigest::Centroid>& TDigest::centroids() const {
  Compress();
  return centroids_;
}

double TDigest::Quantile(double q) const {
  TS_CHECK(!empty());
  TS_CHECK_GE(q, 0.0);
  TS_CHECK_LE(q, 1.0);
  Compress();
  if (centroids_.size() == 1) {
    return centroids_[0].mean;
  }
  const double target = q * total_weight_;
  // Walk centroids treating each as centered mass; interpolate between
  // midpoints, clamping to [min, max].
  double cumulative = 0.0;
  double prev_mid_weight = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double mid = cumulative + c.weight / 2.0;
    if (target <= mid) {
      const double span = mid - prev_mid_weight;
      const double frac = span <= 0.0 ? 0.0 : (target - prev_mid_weight) / span;
      return std::clamp(prev_mean + frac * (c.mean - prev_mean), min_, max_);
    }
    cumulative += c.weight;
    prev_mid_weight = mid;
    prev_mean = c.mean;
  }
  return max_;
}

double TDigest::CdfAtMost(double value) const {
  TS_CHECK(!empty());
  Compress();
  if (value < min_) {
    return 0.0;
  }
  if (value >= max_) {
    return 1.0;
  }
  // Inverse of the quantile interpolation: midpoints as knots.
  double cumulative = 0.0;
  double prev_mid = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double mid = cumulative + c.weight / 2.0;
    if (value < c.mean) {
      const double span = c.mean - prev_mean;
      const double frac = span <= 0.0 ? 1.0 : (value - prev_mean) / span;
      return std::clamp((prev_mid + frac * (mid - prev_mid)) / total_weight_, 0.0, 1.0);
    }
    cumulative += c.weight;
    prev_mid = mid;
    prev_mean = c.mean;
  }
  return 1.0;
}

void TDigest::SaveState(SnapshotWriter& writer) const {
  Compress();  // Canonicalize: saved state never carries a pending buffer.
  writer.WriteDouble(compression_);
  writer.WriteDouble(min_);
  writer.WriteDouble(max_);
  writer.WriteDouble(total_weight_);
  writer.WriteVarU64(centroids_.size());
  for (const Centroid& c : centroids_) {
    writer.WriteDouble(c.mean);
    writer.WriteDouble(c.weight);
  }
}

void TDigest::RestoreState(SnapshotReader& reader) {
  compression_ = reader.ReadDouble();
  min_ = reader.ReadDouble();
  max_ = reader.ReadDouble();
  total_weight_ = reader.ReadDouble();
  const uint64_t n = reader.ReadVarCount(16);  // Each centroid is two doubles.
  centroids_.clear();
  centroids_.reserve(reader.ok() ? n : 0);
  for (uint64_t i = 0; reader.ok() && i < n; ++i) {
    Centroid c;
    c.mean = reader.ReadDouble();
    c.weight = reader.ReadDouble();
    centroids_.push_back(c);
  }
  buffer_.clear();
  buffered_weight_ = 0.0;
}

}  // namespace threesigma
