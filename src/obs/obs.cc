#include "src/obs/obs.h"

#include <fstream>
#include <sstream>

#include "src/common/env.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace obs {
namespace {

Options& MutableOptions() {
  static Options* const options = new Options();
  return *options;
}

bool WriteTextFile(const std::string& path, const std::string& contents, const char* what,
                   std::string* error) {
  std::string io_error;
  if (!WriteFileAtomic(path, contents, &io_error)) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + io_error;
    }
    return false;
  }
  return true;
}

}  // namespace

void Configure(const Options& options) {
  Options effective = options;
  // A sink implies the facility that feeds it.
  if (!effective.trace_json_out.empty() || !effective.trace_bin_out.empty()) {
    effective.tracing = true;
  }
  if (!effective.phase_csv_out.empty()) {
    effective.profiler = true;
  }
  if (!effective.decisions_csv_out.empty()) {
    effective.decisions = true;
  }
  MutableOptions() = effective;

  Tracer& tracer = Tracer::Global();
  tracer.SetRingCapacity(static_cast<size_t>(effective.ring_capacity));
  // The profiler consumes phase spans, so span emission turns on for either.
  tracer.SetEnabled(effective.tracing || effective.profiler);
  CycleProfiler::Global().SetEnabled(effective.profiler);
  DecisionLog::Global().SetEnabled(effective.decisions);
}

const Options& CurrentOptions() { return MutableOptions(); }

bool Flush(std::string* error) {
  const Options& options = MutableOptions();
  if (!options.trace_json_out.empty()) {
    std::ostringstream os;
    Tracer::Global().ExportChromeJson(os);
    if (!WriteTextFile(options.trace_json_out, os.str(), "trace json", error)) {
      return false;
    }
  }
  if (!options.trace_bin_out.empty()) {
    SnapshotWriter writer;
    Tracer::Global().ExportBinary(writer);
    std::string io_error;
    if (!writer.FinishToFile(options.trace_bin_out, &io_error)) {
      if (error != nullptr) {
        *error = "trace binary: " + io_error;
      }
      return false;
    }
  }
  if (!options.phase_csv_out.empty()) {
    std::ostringstream os;
    CycleProfiler::Global().WriteCsv(os);
    if (!WriteTextFile(options.phase_csv_out, os.str(), "phase csv", error)) {
      return false;
    }
  }
  if (!options.decisions_csv_out.empty()) {
    if (!WriteTextFile(options.decisions_csv_out, DecisionLog::Global().ToCsvString(),
                       "decisions csv", error)) {
      return false;
    }
  }
  if (!options.metrics_out.empty()) {
    std::ostringstream os;
    MetricsRegistry::Global().WriteText(os);
    if (!WriteTextFile(options.metrics_out, os.str(), "metrics dump", error)) {
      return false;
    }
  }
  return true;
}

void ResetAll() {
  MutableOptions() = Options{};
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  tracer.SetSimNow(0.0);
  tracer.SetCycle(-1);
  CycleProfiler::Global().SetEnabled(false);
  CycleProfiler::Global().Clear();
  DecisionLog::Global().SetEnabled(false);
  DecisionLog::Global().Clear();
  MetricsRegistry::Global().Reset();
}

void ApplyEnv(Options* options) {
  options->trace_json_out = GetEnvString("THREESIGMA_OBS_TRACE", options->trace_json_out);
  options->trace_bin_out = GetEnvString("THREESIGMA_OBS_TRACE_BIN", options->trace_bin_out);
  options->phase_csv_out = GetEnvString("THREESIGMA_OBS_PHASE_CSV", options->phase_csv_out);
  options->decisions_csv_out =
      GetEnvString("THREESIGMA_OBS_DECISIONS_CSV", options->decisions_csv_out);
  options->metrics_out = GetEnvString("THREESIGMA_OBS_METRICS", options->metrics_out);
  options->ring_capacity = GetEnvInt("THREESIGMA_OBS_RING", options->ring_capacity);
  if (!options->trace_json_out.empty() || !options->trace_bin_out.empty()) {
    options->tracing = true;
  }
  if (!options->phase_csv_out.empty()) {
    options->profiler = true;
  }
  if (!options->decisions_csv_out.empty()) {
    options->decisions = true;
  }
}

}  // namespace obs
}  // namespace threesigma
