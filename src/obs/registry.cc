#include "src/obs/registry.h"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "src/common/check.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace obs {

int ThreadStripe() {
  static std::atomic<int> next{0};
  thread_local const int stripe = next.fetch_add(1, std::memory_order_relaxed) &
                                  (kMetricStripes - 1);
  return stripe;
}

int64_t Counter::Value() const {
  int64_t total = base_.load(std::memory_order_relaxed);
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Set(int64_t value) {
  for (Cell& cell : cells_) {
    cell.v.store(0, std::memory_order_relaxed);
  }
  base_.store(value, std::memory_order_relaxed);
}

void Gauge::Set(double value) {
  if (SpeculativeSuppressed()) {
    return;
  }
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  bits_.store(bits, std::memory_order_relaxed);
}

double Gauge::Value() const {
  const uint64_t bits = bits_.load(std::memory_order_relaxed);
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Histogram::Histogram(std::string name, std::vector<double> edges)
    : name_(std::move(name)), edges_(std::move(edges)) {
  TS_CHECK_MSG(!edges_.empty(), "histogram " << name_ << " needs at least one bucket edge");
  TS_CHECK_MSG(std::is_sorted(edges_.begin(), edges_.end()),
               "histogram " << name_ << " edges must be sorted");
  const size_t buckets = edges_.size() + 1;
  for (Cell& cell : cells_) {
    cell.buckets = std::vector<std::atomic<int64_t>>(buckets);
  }
  base_ = std::vector<std::atomic<int64_t>>(buckets);
}

void Histogram::Observe(double value) {
  if (SpeculativeSuppressed()) {
    return;
  }
  // Inclusive upper bounds: bucket b is the first edge >= value, the
  // overflow bucket everything beyond the last edge.
  const size_t b = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), value) - edges_.begin());
  cells_[static_cast<size_t>(ThreadStripe())].buckets[b].fetch_add(
      1, std::memory_order_relaxed);
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (size_t b = 0; b < base_.size(); ++b) {
    total += base_[b].load(std::memory_order_relaxed);
    for (const Cell& cell : cells_) {
      total += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(base_.size(), 0);
  for (size_t b = 0; b < base_.size(); ++b) {
    out[b] = base_[b].load(std::memory_order_relaxed);
    for (const Cell& cell : cells_) {
      out[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::Reset() {
  for (size_t b = 0; b < base_.size(); ++b) {
    base_[b].store(0, std::memory_order_relaxed);
    for (Cell& cell : cells_) {
      cell.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name))).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& edges) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name, edges)))
             .first;
  } else {
    TS_CHECK_MSG(it->second->edges() == edges,
                 "histogram " << name << " re-registered with different bucket edges");
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

void MetricsRegistry::WriteText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    os << "counter " << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "gauge " << name << " " << gauge->Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    os << "histogram " << name << " total " << histogram->TotalCount() << " buckets";
    const std::vector<int64_t> counts = histogram->BucketCounts();
    for (size_t b = 0; b < counts.size(); ++b) {
      os << " " << counts[b];
    }
    os << "\n";
  }
}

void MetricsRegistry::SaveState(SnapshotWriter& writer) const {
  std::lock_guard<std::mutex> lock(mu_);
  writer.WriteVarU64(counters_.size());
  for (const auto& [name, counter] : counters_) {
    writer.WriteString(name);
    writer.WriteVarI64(counter->Value());
  }
  writer.WriteVarU64(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    writer.WriteString(name);
    writer.WriteDouble(gauge->Value());
  }
  writer.WriteVarU64(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    writer.WriteString(name);
    writer.WriteDoubleVec(histogram->edges());
    const std::vector<int64_t> counts = histogram->BucketCounts();
    writer.WriteVarU64(counts.size());
    for (int64_t c : counts) {
      writer.WriteVarI64(c);
    }
  }
}

void MetricsRegistry::RestoreState(SnapshotReader& reader) {
  const uint64_t num_counters = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < num_counters; ++i) {
    const std::string name = reader.ReadString();
    const int64_t value = reader.ReadVarI64();
    if (reader.ok()) {
      GetCounter(name)->Set(value);
    }
  }
  const uint64_t num_gauges = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < num_gauges; ++i) {
    const std::string name = reader.ReadString();
    const double value = reader.ReadDouble();
    if (reader.ok()) {
      GetGauge(name)->Set(value);
    }
  }
  const uint64_t num_histograms = reader.ReadVarU64();
  for (uint64_t i = 0; reader.ok() && i < num_histograms; ++i) {
    const std::string name = reader.ReadString();
    const std::vector<double> edges = reader.ReadDoubleVec();
    const uint64_t num_buckets = reader.ReadVarCount();
    std::vector<int64_t> counts;
    counts.reserve(reader.ok() ? num_buckets : 0);
    for (uint64_t b = 0; reader.ok() && b < num_buckets; ++b) {
      counts.push_back(reader.ReadVarI64());
    }
    if (!reader.ok() || edges.empty()) {
      continue;
    }
    Histogram* histogram = GetHistogram(name, edges);
    histogram->Reset();
    // Restore is absolute: install the saved counts as the base so further
    // observations continue from the checkpoint totals.
    for (size_t b = 0; b < counts.size() && b < histogram->base_.size(); ++b) {
      histogram->base_[b].store(counts[b], std::memory_order_relaxed);
    }
  }
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

}  // namespace obs
}  // namespace threesigma
