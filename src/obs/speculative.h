// Speculative-execution suppression for the observability subsystem.
//
// The digital-twin engine (src/twin) steps forked Simulator clones through
// speculative cycles while a live run is parked at a cycle boundary. Those
// clones execute the exact same instrumented code paths as the live run —
// SimCounters increments, TS_OBS_SPAN brackets, CycleProfiler phase rows,
// DecisionLog records — and all of that plumbing is process-global. Without a
// gate, every speculative cycle would pollute the live run's metrics registry
// and decision CSV, breaking the twin's read-only contract (and the
// byte-identity acceptance test that rides on it).
//
// SpeculativeScope raises a process-wide suppression depth for its lifetime;
// while the depth is nonzero, Tracer/CycleProfiler/DecisionLog::enabled()
// report false and Counter/Gauge/Histogram writes drop on the floor. The
// depth is a plain atomic rather than thread_local on purpose: a forked
// scheduler spawns its own solver ThreadPool, and those worker threads must
// be suppressed too. This is sound because speculation only ever runs while
// the live driver is idle at a cycle boundary (the serve loop is a
// single-threaded event loop), so there is no concurrent live instrumentation
// to accidentally silence. The depth counter nests, so an advisory sweep can
// wrap individual scenario steps without bookkeeping.

#ifndef SRC_OBS_SPECULATIVE_H_
#define SRC_OBS_SPECULATIVE_H_

#include <atomic>

namespace threesigma {
namespace obs {

namespace internal {
inline std::atomic<int> speculative_depth{0};
}  // namespace internal

// True while at least one SpeculativeScope is alive anywhere in the process.
inline bool SpeculativeSuppressed() {
  return internal::speculative_depth.load(std::memory_order_relaxed) != 0;
}

// RAII guard: all observability output is suppressed while any instance
// lives. Nests; not tied to the constructing thread.
class SpeculativeScope {
 public:
  SpeculativeScope() { internal::speculative_depth.fetch_add(1, std::memory_order_relaxed); }
  ~SpeculativeScope() { internal::speculative_depth.fetch_sub(1, std::memory_order_relaxed); }

  SpeculativeScope(const SpeculativeScope&) = delete;
  SpeculativeScope& operator=(const SpeculativeScope&) = delete;
};

}  // namespace obs
}  // namespace threesigma

#endif  // SRC_OBS_SPECULATIVE_H_
