// Observability subsystem entry point: options, runtime gating, and export.
//
// The subsystem is compiled in unconditionally and gated at runtime: with
// everything disabled (the default) each instrumentation site costs one
// relaxed atomic load and branch, and enabling any of it never changes a
// scheduling decision (property-tested in tests/obs_property_test.cc).
//
// Three independently gated facilities share the gates set by Configure():
//   - metrics registry  (src/obs/registry.h) — always collecting; counter
//     adds happen at solve/cycle/event granularity, far below the <1%
//     overhead budget (bench/micro_obs.cc measures it).
//   - span tracer       (src/obs/trace.h)    — options.tracing/profiler.
//   - cycle profiler + decision log (src/obs/profiler.h).
//
// Flush() writes every configured export sink:
//   --trace-out          Chrome trace_event JSON (chrome://tracing).
//   --trace-bin-out      binary trace via the snapshot codec (diffable).
//   --obs-phase-csv      per-cycle phase-latency table.
//   --obs-decisions-csv  per-cycle decision log (golden-trace input).
//   --obs-metrics-out    registry text dump.
//
// Bench binaries pick the same knobs up from THREESIGMA_OBS_* environment
// variables via ApplyEnv (see bench/bench_util.h for the knob table).

#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <cstdint>
#include <string>

#include "src/obs/profiler.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace threesigma {
namespace obs {

struct Options {
  // Gates. `tracing` records spans into rings (needed for the JSON/binary
  // exports); `profiler` builds the per-cycle phase table (implies span
  // timing but not ring retention); `decisions` records the per-cycle
  // decision log.
  bool tracing = false;
  bool profiler = false;
  bool decisions = false;

  // Per-thread span ring capacity (records); oldest spans drop on wrap.
  int64_t ring_capacity = 1 << 16;

  // Export sinks, written by Flush(). Empty = not written.
  std::string trace_json_out;
  std::string trace_bin_out;
  std::string phase_csv_out;
  std::string decisions_csv_out;
  std::string metrics_out;

  bool any() const {
    return tracing || profiler || decisions || !trace_json_out.empty() ||
           !trace_bin_out.empty() || !phase_csv_out.empty() || !decisions_csv_out.empty() ||
           !metrics_out.empty();
  }
};

// Applies gates and remembers sinks for Flush(). Sinks named in `options`
// auto-enable the facility that feeds them (e.g. trace_json_out => tracing).
// Idempotent; later calls replace the configuration.
void Configure(const Options& options);

// The configuration last passed to Configure().
const Options& CurrentOptions();

// Writes every configured sink. Returns false with `*error` on IO failure.
bool Flush(std::string* error = nullptr);

// Disables all gates and clears collected spans, profiler rows, decision
// records, and registry values. For tests and run scoping.
void ResetAll();

// Overlays THREESIGMA_OBS_* environment knobs (unset leaves the field):
//   THREESIGMA_OBS_TRACE=<path>          trace_json_out (+ tracing)
//   THREESIGMA_OBS_TRACE_BIN=<path>      trace_bin_out (+ tracing)
//   THREESIGMA_OBS_PHASE_CSV=<path>      phase_csv_out (+ profiler)
//   THREESIGMA_OBS_DECISIONS_CSV=<path>  decisions_csv_out (+ decisions)
//   THREESIGMA_OBS_METRICS=<path>        metrics_out
//   THREESIGMA_OBS_RING=<n>              ring_capacity
void ApplyEnv(Options* options);

}  // namespace obs
}  // namespace threesigma

#endif  // SRC_OBS_OBS_H_
