// Scoped RAII span tracer with per-thread ring buffers.
//
// Spans are stamped with the *simulation clock* (set by the simulator's
// event loop) plus a per-thread emission ordinal, so the deterministic part
// of a trace is byte-identical across runs, machines, and solver thread
// counts. Wall-clock start/duration are recorded too, but quarantined in
// their own export section — exactly the discipline the snapshot format uses
// for its "timing" section — so diffing two traces ignores the only
// non-reproducible state.
//
// Usage (the macro interns the name once per site via a function-local
// static; the span itself is a stack object):
//
//   {
//     TS_OBS_SPAN("sched.solve", threesigma::obs::Phase::kSolve);
//     ... the MILP solve ...
//   }
//
// Cost model. When tracing is disabled the span constructor is a single
// relaxed atomic load and branch; nothing else runs. When enabled, Begin
// reads two clocks and End writes one fixed-size record into a preallocated
// per-thread ring (oldest records are overwritten once the ring wraps;
// `dropped()` counts the overwrites). Spans tagged with a Phase also feed
// the cycle profiler (src/obs/profiler.h).
//
// Exports:
//   - ExportChromeJson: Chrome trace_event JSON (load via chrome://tracing
//     or https://ui.perfetto.dev). Uses the quarantined wall clock so phase
//     widths are real latencies; sim time and cycle ride along in args.
//   - ExportBinary: "trace_names" + "trace_spans" (deterministic) and
//     "trace_timing" (wall clock) sections through the snapshot codec, so
//     DiffSnapshotSections(a, b, {"trace_timing"}) proves two traces
//     identical up to wall clock.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/speculative.h"

namespace threesigma {

class SnapshotWriter;

namespace obs {

// Pipeline phases the cycle profiler aggregates (src/obs/profiler.h). The
// first six are the scheduler's per-cycle pipeline and are disjoint in time;
// the rest are simulator-side and may nest around them.
enum class Phase : uint8_t {
  kCapacity = 0,   // Eq. 2 conditioning + Eq. 3 expected-capacity charging.
  kSelect,         // Pending selection and abandonment.
  kValuation,      // Eq. 1 option enumeration and valuation.
  kBuild,          // MILP compilation.
  kSolve,          // MILP (or greedy) solve.
  kPlacement,      // Solution extraction into decisions.
  kSimEvents,      // Simulator event processing outside scheduling cycles.
  kFaultDelivery,  // Node fault application and injected kills.
  kPredict,        // Predictor lookups and history recording.
  kOther,          // Trace-only spans; not a profiler phase column.
  kCount,
};

const char* PhaseName(Phase phase);

// An interned span name. Construct once per site (the TS_OBS_SPAN macro uses
// a function-local static); construction registers the name in a global
// table and assigns a dense id in registration order, which is deterministic
// because instrumentation sites execute in deterministic order on the driver
// thread.
class SpanName {
 public:
  explicit SpanName(const char* name, Phase phase = Phase::kOther);

  uint32_t id() const { return id_; }
  Phase phase() const { return phase_; }

 private:
  uint32_t id_;
  Phase phase_;
};

struct SpanRecord {
  uint32_t name_id = 0;
  uint8_t phase = static_cast<uint8_t>(Phase::kOther);
  uint16_t thread_ord = 0;
  uint16_t depth = 0;        // Nesting depth at emission.
  int64_t cycle = -1;        // Profiler cycle ordinal; -1 outside any cycle.
  double sim_time = 0.0;     // Simulation clock at span end.
  uint64_t order = 0;        // Per-thread emission ordinal.
  // Quarantined wall clock (never part of the deterministic export).
  double wall_start = 0.0;   // Seconds since the tracer epoch.
  double wall_dur = 0.0;
};

class Tracer {
 public:
  static Tracer& Global();

  // The one-branch gate every span site reads first. Speculative (digital
  // twin) execution reads as disabled so forked runs never emit spans.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed) && !SpeculativeSuppressed();
  }
  void SetEnabled(bool enabled);

  // Ring capacity per thread (records). Takes effect for rings created
  // after the call; Clear() re-creates existing rings.
  void SetRingCapacity(size_t capacity);

  // Simulation clock and cycle ordinal, maintained by the simulator /
  // profiler on the driver thread.
  void SetSimNow(double now) { sim_now_.store(now, std::memory_order_relaxed); }
  double sim_now() const { return sim_now_.load(std::memory_order_relaxed); }
  void SetCycle(int64_t cycle) { cycle_.store(cycle, std::memory_order_relaxed); }
  int64_t cycle() const { return cycle_.load(std::memory_order_relaxed); }

  // Drops all recorded spans and resets the wall-clock epoch.
  void Clear();

  // All retained spans, ordered by (thread_ord, order) — deterministic for
  // driver-thread instrumentation.
  std::vector<SpanRecord> CollectSpans() const;
  // Records overwritten because a ring wrapped.
  uint64_t dropped() const;

  void ExportChromeJson(std::ostream& os) const;
  void ExportBinary(SnapshotWriter& writer) const;

  // Interned names, indexed by id (copy; the table only grows).
  std::vector<std::pair<std::string, Phase>> names() const;

 private:
  friend class Span;
  friend class SpanName;

  struct ThreadState;

  Tracer();
  ThreadState* ThisThread();
  uint32_t InternName(const char* name, Phase phase);
  double WallNow() const;  // Seconds since the tracer epoch.

  static std::atomic<bool> enabled_;

  std::atomic<double> sim_now_{0.0};
  std::atomic<int64_t> cycle_{-1};
  std::atomic<size_t> ring_capacity_{1 << 16};

  mutable std::mutex mu_;  // Guards threads_, names_, epoch_.
  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::vector<std::pair<std::string, Phase>> names_;
  int64_t epoch_ns_ = 0;
};

// RAII span. Constructed disabled it does nothing; constructed enabled it
// records wall start on entry and emits a SpanRecord on scope exit (also
// feeding the cycle profiler when the name carries a profiler phase).
class Span {
 public:
  explicit Span(const SpanName& name) {
    if (Tracer::enabled()) {
      Begin(name);
    }
  }
  ~Span() {
    if (begun_) {
      End();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Begin(const SpanName& name);
  void End();

  bool begun_ = false;
  uint32_t name_id_ = 0;
  Phase phase_ = Phase::kOther;
  double wall_start_ = 0.0;
};

#define TS_OBS_CONCAT_INNER(a, b) a##b
#define TS_OBS_CONCAT(a, b) TS_OBS_CONCAT_INNER(a, b)
// One span site: interns the name once, then opens a scoped span.
#define TS_OBS_SPAN(name_literal, phase)                                            \
  static const ::threesigma::obs::SpanName TS_OBS_CONCAT(ts_obs_name_, __LINE__)(   \
      name_literal, phase);                                                         \
  ::threesigma::obs::Span TS_OBS_CONCAT(ts_obs_span_, __LINE__)(                    \
      TS_OBS_CONCAT(ts_obs_name_, __LINE__))

}  // namespace obs
}  // namespace threesigma

#endif  // SRC_OBS_TRACE_H_
