// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with lock-free striped cells.
//
// This is the unified counter plumbing for the whole stack (simulator event
// loop, scheduler phases, simplex work counters, fault delivery, predictor
// traffic). Handles are stable pointers obtained once (typically at module
// init or construction) and incremented on the hot path:
//
//   static obs::Counter* const kLpSolves =
//       obs::MetricsRegistry::Global().GetCounter("solver.lp_solves");
//   kLpSolves->Increment();
//
// Concurrency and determinism. Each metric owns a small fixed array of
// cache-line-padded atomic cells; a thread picks its cell by a thread-local
// stripe index, so concurrent increments never contend on one cache line and
// never take a lock. Reads sum the cells. Counter and histogram cells are
// 64-bit integers, so the aggregate is exactly the single-threaded total
// regardless of how increments interleaved across threads — the property
// tests rely on this. Gauges are last-write-wins doubles and should be set
// from deterministic (single-threaded) code.
//
// Snapshot-awareness. SaveState/RestoreState serialize every metric's
// aggregate through the snapshot codec; restore is *absolute* (Set), so a
// resumed run continues its counters from the checkpoint instead of
// restarting at zero (see the "obs" section in src/sim/simulator.cc and the
// resume-continuation test in tests/obs_property_test.cc).

#ifndef SRC_OBS_REGISTRY_H_
#define SRC_OBS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/speculative.h"

namespace threesigma {

class SnapshotReader;
class SnapshotWriter;

namespace obs {

// Stripe count for per-metric cells (power of two). 16 stripes cover far
// more concurrency than the solver pool ever runs while keeping reads cheap.
inline constexpr int kMetricStripes = 16;

// Stable per-thread stripe index in [0, kMetricStripes).
int ThreadStripe();

class Counter {
 public:
  void Add(int64_t delta) {
    if (SpeculativeSuppressed()) {
      return;
    }
    cells_[static_cast<size_t>(ThreadStripe())].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Aggregate over all stripes plus the restore base.
  int64_t Value() const;
  // Zeroes every stripe and installs `value` as the base (snapshot restore).
  void Set(int64_t value);
  void Reset() { Set(0); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };

  std::string name_;
  std::atomic<int64_t> base_{0};
  std::array<Cell, kMetricStripes> cells_{};
};

// Last-write-wins double. Intended for values set from deterministic code
// (e.g. the driver thread publishing a cache hit rate once per cycle).
class Gauge {
 public:
  void Set(double value);
  double Value() const;
  void Reset() { Set(0.0); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> bits_{0};
};

// Fixed-bucket histogram: `edges` are the inclusive upper bounds of the
// first N buckets; one overflow bucket catches everything above the last
// edge. Bucket counts are integer and striped, so aggregation is exact.
class Histogram {
 public:
  void Observe(double value);

  int64_t TotalCount() const;
  // Aggregated per-bucket counts, size() == edges().size() + 1.
  std::vector<int64_t> BucketCounts() const;
  const std::vector<double>& edges() const { return edges_; }

  void Reset();
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> edges);

  struct alignas(64) Cell {
    std::vector<std::atomic<int64_t>> buckets;
  };

  std::string name_;
  std::vector<double> edges_;
  std::array<Cell, kMetricStripes> cells_;
  std::vector<std::atomic<int64_t>> base_;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Get-or-create. Returned pointers are stable for the registry's lifetime
  // (metrics are never deleted); hold them instead of re-looking-up on the
  // hot path. GetHistogram with mismatched edges for an existing name is a
  // programming error and aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, const std::vector<double>& edges);

  // Zeroes every registered metric (tests and fresh-run scoping).
  void Reset();

  // Deterministic text dump (sorted by name; counters, gauges, histograms).
  void WriteText(std::ostream& os) const;

  // Snapshot payload (no section framing; the caller owns the section).
  // Restore Set()s absolute values, creating metrics as needed.
  void SaveState(SnapshotWriter& writer) const;
  void RestoreState(SnapshotReader& reader);

  // Point-in-time aggregate of every counter, sorted by name (tests).
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  // Guards the maps only; metric ops are lock-free.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace threesigma

#endif  // SRC_OBS_REGISTRY_H_
