#include "src/obs/profiler.h"

#include <ostream>
#include <sstream>

namespace threesigma {
namespace obs {

std::atomic<bool> CycleProfiler::enabled_{false};
std::atomic<bool> DecisionLog::enabled_{false};

CycleProfiler& CycleProfiler::Global() {
  static CycleProfiler* const profiler = new CycleProfiler();
  return *profiler;
}

void CycleProfiler::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void CycleProfiler::BeginCycle(int64_t cycle, double sim_time) {
  current_ = CyclePhaseRow{};
  current_.cycle = cycle;
  current_.sim_time = sim_time;
  // Inter-cycle phase time (event processing, predict-on-arrival, fault
  // delivery) belongs to the cycle it precedes.
  current_.phase_seconds = pending_;
  pending_.fill(0.0);
  current_.twin_sweep_seconds = pending_twin_;
  pending_twin_ = 0.0;
  cycle_open_ = true;
  Tracer::Global().SetCycle(cycle);
}

void CycleProfiler::AddPhase(Phase phase, double seconds) {
  auto& sink = cycle_open_ ? current_.phase_seconds : pending_;
  sink[static_cast<size_t>(phase)] += seconds;
}

void CycleProfiler::AddTwinSweep(double seconds) {
  if (cycle_open_) {
    current_.twin_sweep_seconds += seconds;
  } else {
    pending_twin_ += seconds;
  }
}

void CycleProfiler::SetCycleCounters(int64_t valuation_cache_hits,
                                     int64_t valuation_cache_misses,
                                     int64_t valuation_kernel_calls,
                                     int64_t milp_shards) {
  if (!cycle_open_) {
    return;
  }
  current_.valuation_cache_hits = valuation_cache_hits;
  current_.valuation_cache_misses = valuation_cache_misses;
  current_.valuation_kernel_calls = valuation_kernel_calls;
  current_.milp_shards = milp_shards;
}

void CycleProfiler::EndCycle(double cycle_seconds) {
  if (!cycle_open_) {
    return;
  }
  current_.cycle_seconds = cycle_seconds;
  rows_.push_back(current_);
  cycle_open_ = false;
  Tracer::Global().SetCycle(-1);
}

void CycleProfiler::WriteCsv(std::ostream& os) const {
  os << "cycle,sim_time";
  for (size_t p = 0; p < static_cast<size_t>(Phase::kCount); ++p) {
    os << "," << PhaseName(static_cast<Phase>(p)) << "_s";
  }
  os << ",sched_phase_sum_s,cycle_s,val_cache_hits,val_cache_misses,val_kernel_calls"
     << ",milp_shards,twin_sweep_s\n";
  for (const CyclePhaseRow& row : rows_) {
    os << row.cycle << "," << row.sim_time;
    for (size_t p = 0; p < static_cast<size_t>(Phase::kCount); ++p) {
      os << "," << row.phase_seconds[p];
    }
    os << "," << row.sched_phase_seconds() << "," << row.cycle_seconds << ","
       << row.valuation_cache_hits << "," << row.valuation_cache_misses << ","
       << row.valuation_kernel_calls << "," << row.milp_shards << ","
       << row.twin_sweep_seconds << "\n";
  }
}

void CycleProfiler::Clear() {
  rows_.clear();
  current_ = CyclePhaseRow{};
  cycle_open_ = false;
  pending_.fill(0.0);
  pending_twin_ = 0.0;
}

DecisionLog& DecisionLog::Global() {
  static DecisionLog* const log = new DecisionLog();
  return *log;
}

void DecisionLog::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void DecisionLog::Record(DecisionRecord record) { records_.push_back(std::move(record)); }

namespace {

void WriteJobGroupList(std::ostream& os, const std::vector<std::pair<int64_t, int>>& items) {
  bool first = true;
  for (const auto& [job, group] : items) {
    if (!first) {
      os << ";";
    }
    first = false;
    os << job << "@" << group;
  }
}

void WriteJobList(std::ostream& os, const std::vector<int64_t>& items) {
  bool first = true;
  for (int64_t job : items) {
    if (!first) {
      os << ";";
    }
    first = false;
    os << job;
  }
}

}  // namespace

void DecisionLog::WriteCsv(std::ostream& os) const {
  os << "cycle,sim_time,pending,running,starts,preempts,abandons,deferred\n";
  for (const DecisionRecord& record : records_) {
    os << record.cycle << "," << record.sim_time << "," << record.pending << ","
       << record.running << ",";
    WriteJobGroupList(os, record.starts);
    os << ",";
    WriteJobList(os, record.preempts);
    os << ",";
    WriteJobList(os, record.abandons);
    os << ",";
    WriteJobGroupList(os, record.deferred);
    os << "\n";
  }
}

std::string DecisionLog::ToCsvString() const {
  std::ostringstream os;
  WriteCsv(os);
  return os.str();
}

void DecisionLog::Clear() { records_.clear(); }

}  // namespace obs
}  // namespace threesigma
