// Cycle profiler and decision log.
//
// CycleProfiler turns the span stream into a per-cycle phase-latency table:
// one row per scheduling cycle with wall-clock seconds spent in each Phase
// (src/obs/trace.h). The simulator brackets each cycle with BeginCycle /
// EndCycle; phase spans landing in between accumulate into the open row.
// Phase time spent *between* cycles (event processing, fault delivery,
// predictor calls on arrival) accumulates into a pending row that folds into
// the next BeginCycle, so nothing is lost.
//
// The row's `cycle_seconds` is the scheduler-reported full-cycle latency
// (CycleResult::cycle_seconds); `sched_phase_seconds()` sums the six
// scheduler pipeline phases, which are disjoint sub-intervals of the cycle,
// so the two agree to within the unwrapped slivers between scopes (the
// golden acceptance check in tests and EXPERIMENTS.md).
//
// DecisionLog captures the *decisions* of every cycle (starts, preemptions,
// abandonments, deferrals) in a deterministic CSV — the golden-trace
// regression harness diffs this against committed goldens.
//
// Both are driver-thread facilities behind a one-branch enabled() gate;
// enabling them must not (and does not) perturb any scheduling decision.

#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace threesigma {
namespace obs {

struct CyclePhaseRow {
  int64_t cycle = 0;
  double sim_time = 0.0;
  std::array<double, static_cast<size_t>(Phase::kCount)> phase_seconds{};
  double cycle_seconds = 0.0;  // Scheduler-reported full-cycle latency.
  // Valuation-engine traffic this cycle (deterministic, unlike the timings).
  int64_t valuation_cache_hits = 0;
  int64_t valuation_cache_misses = 0;
  int64_t valuation_kernel_calls = 0;
  // Shard count of this cycle's MILP solve (0 = shards off or no solve).
  int64_t milp_shards = 0;
  // Wall time spent in digital-twin advisory sweeps between the previous
  // cycle and this one (zero when the twin is off).
  double twin_sweep_seconds = 0.0;

  // Sum of the six disjoint scheduler pipeline phases (capacity..placement).
  double sched_phase_seconds() const {
    double total = 0.0;
    for (size_t p = 0; p <= static_cast<size_t>(Phase::kPlacement); ++p) {
      total += phase_seconds[p];
    }
    return total;
  }
};

class CycleProfiler {
 public:
  static CycleProfiler& Global();

  // Reads false under speculative (digital twin) execution so forked runs
  // never append phase rows to the live profiler.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed) && !SpeculativeSuppressed();
  }
  void SetEnabled(bool enabled);

  void BeginCycle(int64_t cycle, double sim_time);
  // Called by Span::End for phase-tagged spans (driver thread only).
  void AddPhase(Phase phase, double seconds);
  // Digital-twin sweep wall time; folded into the next cycle's row like
  // inter-cycle phase time (driver thread only).
  void AddTwinSweep(double seconds);
  // Stamps the open row's valuation and shard counters; no-op without an
  // open cycle.
  void SetCycleCounters(int64_t valuation_cache_hits, int64_t valuation_cache_misses,
                        int64_t valuation_kernel_calls, int64_t milp_shards = 0);
  void EndCycle(double cycle_seconds);

  const std::vector<CyclePhaseRow>& rows() const { return rows_; }
  void WriteCsv(std::ostream& os) const;
  void Clear();

 private:
  CycleProfiler() = default;

  static std::atomic<bool> enabled_;

  std::vector<CyclePhaseRow> rows_;
  CyclePhaseRow current_;
  bool cycle_open_ = false;
  // Phase time observed outside any open cycle; folded into the next row.
  std::array<double, static_cast<size_t>(Phase::kCount)> pending_{};
  double pending_twin_ = 0.0;
};

// One cycle's executed decisions, in deterministic content (no wall clock).
struct DecisionRecord {
  int64_t cycle = 0;
  double sim_time = 0.0;
  int pending = 0;
  int running = 0;
  std::vector<std::pair<int64_t, int>> starts;  // (job, group), cycle order.
  std::vector<int64_t> preempts;
  std::vector<int64_t> abandons;
  std::vector<std::pair<int64_t, int>> deferred;  // (job, group).
};

class DecisionLog {
 public:
  static DecisionLog& Global();

  // Also gated off under speculative execution (see src/obs/speculative.h):
  // twin cycles must never reach the live decision CSV.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed) && !SpeculativeSuppressed();
  }
  void SetEnabled(bool enabled);

  void Record(DecisionRecord record);

  const std::vector<DecisionRecord>& records() const { return records_; }
  // Deterministic per-cycle decision CSV:
  //   cycle,sim_time,pending,running,starts,preempts,abandons,deferred
  // with list cells like "12@0;17@2" (job@group, ';'-separated).
  void WriteCsv(std::ostream& os) const;
  std::string ToCsvString() const;
  void Clear();

 private:
  DecisionLog() = default;

  static std::atomic<bool> enabled_;

  std::vector<DecisionRecord> records_;
};

}  // namespace obs
}  // namespace threesigma

#endif  // SRC_OBS_PROFILER_H_
