#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "src/common/check.h"
#include "src/obs/profiler.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace obs {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr uint32_t kTraceSectionVersion = 1;

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kCapacity:
      return "capacity";
    case Phase::kSelect:
      return "select";
    case Phase::kValuation:
      return "valuation";
    case Phase::kBuild:
      return "build";
    case Phase::kSolve:
      return "solve";
    case Phase::kPlacement:
      return "placement";
    case Phase::kSimEvents:
      return "sim_events";
    case Phase::kFaultDelivery:
      return "fault_delivery";
    case Phase::kPredict:
      return "predict";
    case Phase::kOther:
      return "other";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

// Per-thread span storage. Owned by the tracer (so rings outlive pool
// threads); written lock-free by the owning thread only. CollectSpans /
// Clear must not race with emission — in this codebase spans are emitted
// from the simulation driver thread and collected after the run.
struct Tracer::ThreadState {
  uint16_t thread_ord = 0;
  std::vector<SpanRecord> ring;
  size_t head = 0;       // Next write position.
  size_t count = 0;      // Records currently retained (<= ring.size()).
  uint64_t order = 0;    // Emission ordinal (monotone per thread).
  uint64_t dropped = 0;  // Overwritten records.
  uint16_t depth = 0;    // Open-span nesting depth.

  void Push(const SpanRecord& record) {
    if (ring.empty()) {
      ++dropped;
      return;
    }
    if (count == ring.size()) {
      ++dropped;
    } else {
      ++count;
    }
    ring[head] = record;
    head = (head + 1) % ring.size();
  }
};

std::atomic<bool> Tracer::enabled_{false};

Tracer::Tracer() { epoch_ns_ = SteadyNowNs(); }

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

void Tracer::SetRingCapacity(size_t capacity) {
  ring_capacity_.store(capacity, std::memory_order_relaxed);
}

Tracer::ThreadState* Tracer::ThisThread() {
  thread_local ThreadState* state = nullptr;
  if (state == nullptr) {
    auto owned = std::make_unique<ThreadState>();
    state = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    state->thread_ord = static_cast<uint16_t>(threads_.size());
    state->ring.resize(ring_capacity_.load(std::memory_order_relaxed));
    threads_.push_back(std::move(owned));
  }
  return state;
}

uint32_t Tracer::InternName(const char* name, Phase phase) {
  std::lock_guard<std::mutex> lock(mu_);
  names_.emplace_back(name, phase);
  return static_cast<uint32_t>(names_.size() - 1);
}

double Tracer::WallNow() const {
  return static_cast<double>(SteadyNowNs() - epoch_ns_) * 1e-9;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t capacity = ring_capacity_.load(std::memory_order_relaxed);
  for (auto& thread : threads_) {
    thread->ring.assign(capacity, SpanRecord{});
    thread->head = 0;
    thread->count = 0;
    thread->order = 0;
    thread->dropped = 0;
    thread->depth = 0;
  }
  epoch_ns_ = SteadyNowNs();
}

std::vector<SpanRecord> Tracer::CollectSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  for (const auto& thread : threads_) {
    const size_t n = thread->count;
    const size_t size = thread->ring.size();
    // Oldest-first: the ring holds the last `count` records ending at head.
    for (size_t i = 0; i < n; ++i) {
      out.push_back(thread->ring[(thread->head + size - n + i) % size]);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.thread_ord != b.thread_ord) {
      return a.thread_ord < b.thread_ord;
    }
    return a.order < b.order;
  });
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& thread : threads_) {
    total += thread->dropped;
  }
  return total;
}

std::vector<std::pair<std::string, Phase>> Tracer::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

void Tracer::ExportChromeJson(std::ostream& os) const {
  const std::vector<std::pair<std::string, Phase>> name_table = names();
  const std::vector<SpanRecord> spans = CollectSpans();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) {
      os << ",";
    }
    first = false;
    const std::string& name = span.name_id < name_table.size()
                                  ? name_table[span.name_id].first
                                  : std::string("unknown");
    // Complete ("X") events; timestamps are microseconds of quarantined
    // wall clock since the tracer epoch.
    os << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.thread_ord
       << ",\"ts\":" << span.wall_start * 1e6 << ",\"dur\":" << span.wall_dur * 1e6
       << ",\"args\":{\"cycle\":" << span.cycle << ",\"sim_time\":" << span.sim_time
       << ",\"phase\":\"" << PhaseName(static_cast<Phase>(span.phase)) << "\"}}";
  }
  os << "]}";
}

void Tracer::ExportBinary(SnapshotWriter& writer) const {
  const std::vector<std::pair<std::string, Phase>> name_table = names();
  const std::vector<SpanRecord> spans = CollectSpans();

  writer.BeginSection("trace_names", kTraceSectionVersion);
  writer.WriteVarU64(name_table.size());
  for (const auto& [name, phase] : name_table) {
    writer.WriteString(name);
    writer.WriteU8(static_cast<uint8_t>(phase));
  }
  writer.EndSection();

  // Deterministic fields only: byte-identical across runs and thread counts.
  writer.BeginSection("trace_spans", kTraceSectionVersion);
  writer.WriteVarU64(spans.size());
  for (const SpanRecord& span : spans) {
    writer.WriteVarU64(span.name_id);
    writer.WriteU8(span.phase);
    writer.WriteVarU64(span.thread_ord);
    writer.WriteVarU64(span.depth);
    writer.WriteVarI64(span.cycle);
    writer.WriteDouble(span.sim_time);
    writer.WriteVarU64(span.order);
  }
  writer.EndSection();

  // Wall clock, quarantined exactly like the snapshot "timing" section.
  writer.BeginSection("trace_timing", kTraceSectionVersion);
  writer.WriteVarU64(spans.size());
  for (const SpanRecord& span : spans) {
    writer.WriteDouble(span.wall_start);
    writer.WriteDouble(span.wall_dur);
  }
  writer.EndSection();
}

SpanName::SpanName(const char* name, Phase phase)
    : id_(Tracer::Global().InternName(name, phase)), phase_(phase) {}

void Span::Begin(const SpanName& name) {
  Tracer& tracer = Tracer::Global();
  begun_ = true;
  name_id_ = name.id();
  phase_ = name.phase();
  ++tracer.ThisThread()->depth;
  wall_start_ = tracer.WallNow();
}

void Span::End() {
  Tracer& tracer = Tracer::Global();
  const double wall_dur = tracer.WallNow() - wall_start_;
  Tracer::ThreadState* thread = tracer.ThisThread();
  if (thread->depth > 0) {
    --thread->depth;
  }
  SpanRecord record;
  record.name_id = name_id_;
  record.phase = static_cast<uint8_t>(phase_);
  record.thread_ord = thread->thread_ord;
  record.depth = thread->depth;
  record.cycle = tracer.cycle();
  record.sim_time = tracer.sim_now();
  record.order = thread->order++;
  record.wall_start = wall_start_;
  record.wall_dur = wall_dur;
  thread->Push(record);
  if (phase_ != Phase::kOther && CycleProfiler::enabled()) {
    CycleProfiler::Global().AddPhase(phase_, wall_dur);
  }
}

}  // namespace obs
}  // namespace threesigma
