// Ablation: preemption semantics — kill-and-requeue (container clusters)
// vs migration-style resume (VM clusters), the two §2.2 mechanisms.
//
// Expected: resume semantics recover the work preempted best-effort jobs had
// already done, improving BE goodput/latency without hurting SLO miss rate;
// the runtime-unaware Prio benefits most because it preempts most.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.4);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  PrintHeaderBlock("Ablation: preemption semantics (kill vs migrate)",
                   "Expectation: resume recovers preempted BE work; Prio gains most",
                   workload);

  TablePrinter table({"system", "semantics", "SLO miss %", "BE gp (M-hr)", "BE lat (s)",
                      "preempts"});
  for (SystemKind kind : {SystemKind::kThreeSigma, SystemKind::kPrio}) {
    for (bool resume : {false, true}) {
      ExperimentConfig c = config;
      c.sim.preemption_resumes = resume;
      const RunMetrics m = RunSystem(kind, c, workload);
      table.AddRow({m.system, resume ? "migrate/resume" : "kill/restart",
                    TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                    TablePrinter::Fmt(m.be_goodput_machine_hours, 1),
                    TablePrinter::Fmt(m.mean_be_latency_seconds, 0),
                    std::to_string(m.preemptions)});
    }
  }
  table.Print(std::cout);
  return 0;
}
