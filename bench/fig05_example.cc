// Fig. 5 — the two-job worked example on a one-node cluster.
//
// Job D: SLO with a 15-minute deadline. Job BE: best-effort. Scenario 1 draws
// runtimes ~U(0,10) minutes, scenario 2 ~U(2.5,7.5) (same mean). The paper's
// outcome: scenario 1 runs D first (deferring BE to t=10); scenario 2 runs BE
// first and defers D to t=7.5, which still always meets the deadline.
//
// The bench prints, per scenario: the inverse CDF (Fig. 5c/d), D's expected
// utility vs start time (Fig. 5e/f), and the schedule 3σSched's MILP picks
// (Fig. 5a/b).

#include <iostream>
#include <map>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/predict/predictor.h"
#include "src/sched/distribution_scheduler.h"

using namespace threesigma;

namespace {

class ScriptedPredictor : public RuntimePredictor {
 public:
  explicit ScriptedPredictor(EmpiricalDistribution dist) : dist_(std::move(dist)) {}
  RuntimePrediction Predict(const JobFeatures&, double) override {
    RuntimePrediction pred;
    pred.distribution = dist_;
    pred.point_estimate = dist_.Mean();
    pred.from_history = true;
    return pred;
  }
  void RecordCompletion(const JobFeatures&, double) override {}

 private:
  EmpiricalDistribution dist_;
};

void RunScenario(int scenario, double lo_min, double hi_min) {
  std::cout << "---- Scenario " << scenario << ": runtimes ~ U(" << lo_min << ", " << hi_min
            << ") minutes ----\n";
  const auto dist = EmpiricalDistribution::FromUniform(Minutes(lo_min), Minutes(hi_min), 400);

  // Fig. 5(c)/(d): inverse CDF = P(still running at t).
  TablePrinter icdf({"t (min)", "1-CDF(t)"});
  for (double t = 0.0; t <= 15.0; t += 2.5) {
    icdf.AddRow({TablePrinter::Fmt(t, 1), TablePrinter::Fmt(dist.Survival(Minutes(t)), 3)});
  }
  std::cout << "Inverse CDF (probability the job still holds the node):\n";
  icdf.Print(std::cout);

  // Fig. 5(e)/(f): D's expected utility (probability of meeting the 15-min
  // deadline) as a function of start time.
  TablePrinter eu({"start (min)", "E[U] of D"});
  for (double s = 0.0; s <= 17.5; s += 2.5) {
    const double value = dist.ExpectedValue(
        [&](double t) { return Minutes(s) + t <= Minutes(15.0) ? 1.0 : 0.0; });
    eu.AddRow({TablePrinter::Fmt(s, 1), TablePrinter::Fmt(value, 3)});
  }
  std::cout << "\nExpected utility of the SLO job vs start time (deadline 15 min):\n";
  eu.Print(std::cout);

  // Fig. 5(a)/(b): the schedule 3σSched picks.
  ClusterConfig cluster = ClusterConfig::Uniform(1, 1);
  ScriptedPredictor predictor(dist);
  DistSchedulerConfig config;
  config.planahead = Minutes(20.0);
  config.num_start_slots = 8;  // Start grid {0, 2.5, ..., 17.5} minutes.
  config.solver_max_nodes = 500;
  config.solver_time_limit_seconds = 5.0;
  DistributionScheduler sched(cluster, &predictor, config);

  JobSpec slo;
  slo.id = 1;
  slo.name = "D";
  slo.type = JobType::kSlo;
  slo.true_runtime = Minutes(5.0);
  slo.num_tasks = 1;
  slo.deadline = Minutes(15.0);
  slo.utility = UtilityFunction::SloStep(10.0, slo.deadline);
  slo.features = {"job=D"};
  JobSpec be;
  be.id = 2;
  be.name = "BE";
  be.type = JobType::kBestEffort;
  be.true_runtime = Minutes(5.0);
  be.num_tasks = 1;
  be.utility = UtilityFunction::BestEffortLinear(1.0, 0.0, Hours(2.0));
  be.features = {"job=BE"};
  sched.OnJobArrival(slo, 0.0);
  sched.OnJobArrival(be, 0.0);

  ClusterStateView view;
  view.cluster = &cluster;
  view.free_nodes = {1};
  const CycleResult result = sched.RunCycle(0.0, view);
  std::cout << "\nChosen schedule: ";
  for (const Placement& p : result.start) {
    std::cout << (p.job == 1 ? "D" : "BE") << " starts now; ";
  }
  std::cout << "(the other job is deferred)\n\n";
}

}  // namespace

int main() {
  std::cout << "==== Fig. 5: distribution-aware scheduling of two jobs, one node ====\n";
  std::cout << "Paper: scenario 1 runs D first; scenario 2 runs BE first.\n\n";
  RunScenario(1, 0.0, 10.0);
  RunScenario(2, 2.5, 7.5);
  return 0;
}
