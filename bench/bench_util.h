// Shared helpers for the figure/table reproduction benches.
//
// Every bench is a standalone binary that prints the rows of the paper
// figure it regenerates. Scale knobs come from the environment:
//   THREESIGMA_BENCH_SCALE=quick|default|full   (workload length multiplier;
//       "full" approximates the paper's 5-hour windows)
//   THREESIGMA_SEED=<n>
//   THREESIGMA_SOLVER_THREADS=<n>   (branch-and-bound worker threads for all
//       e2e benches; the solver is deterministic in this value)
//   THREESIGMA_SOLVER_WARMSTART=0|1 (simplex basis warm-starting across
//       branch-and-bound nodes and scheduling cycles; default 1. For A/B
//       pivot-count comparisons. Each setting is deterministic, but warm and
//       cold runs may return different equally-scored schedules: a warm LP
//       can surface a different optimal vertex of a degenerate relaxation.)
//   THREESIGMA_SOLVER_SHARDS=0|1    (connected-component decomposition of the
//       per-cycle MILP into independently solved sub-MILPs; default 0. Exact
//       and byte-identical at any shard/thread count when the node budget
//       does not bind — see DESIGN.md for the budget caveat.)
//   THREESIGMA_VALUATION_ENGINE=0|1      (closed-form Eq. 1 kernels + parallel
//       valuation fan-out; default 1. Decisions are byte-identical either way;
//       0 is the generic per-atom baseline for A/B timing.)
//   THREESIGMA_VALUATION_CACHE=0|1       (cross-cycle (job, scale) valuation
//       tables; default 1; engine only)
//   THREESIGMA_VALUATION_CROSSCHECK=0|1  (re-derive every kernel answer with
//       the generic loop, abort on bitwise divergence; default 0)
//   THREESIGMA_FAULT_MTTF=<s>            (node mean time to failure; 0 = off)
//   THREESIGMA_FAULT_MTTR=<s>            (node mean time to repair)
//   THREESIGMA_FAULT_KILL_PROB=<p>       (per-run task-fault kill probability)
//   THREESIGMA_FAULT_STRAGGLER_PROB=<p>  (per-run straggler probability)
//   THREESIGMA_FAULT_STRAGGLER_FACTOR=<f> (max straggler inflation)
//   THREESIGMA_FAULT_STALL_PROB=<p>      (per-cycle scheduler-stall probability)
//   THREESIGMA_FAULT_SEED=<n>            (fault RNG seed, independent of
//       THREESIGMA_SEED so churn stays fixed across workload seeds)
//   THREESIGMA_OBS_TRACE=<path>          (Chrome trace_event JSON sink)
//   THREESIGMA_OBS_TRACE_BIN=<path>      (binary span trace sink)
//   THREESIGMA_OBS_PHASE_CSV=<path>      (per-cycle phase-latency CSV sink)
//   THREESIGMA_OBS_DECISIONS_CSV=<path>  (per-cycle decision-log CSV sink)
//   THREESIGMA_OBS_METRICS=<path>        (metrics-registry text dump sink)
//   THREESIGMA_OBS_RING=<n>              (per-thread span ring capacity)

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/table.h"
#include "src/core/experiment.h"

namespace threesigma {

// The paper's SC256/RC256 stand-in: 4 placement groups x 64 nodes.
inline ClusterConfig Cluster256() { return ClusterConfig::Uniform(4, 64); }

// Overlays the THREESIGMA_FAULT_* environment knobs onto `faults` (leaves the
// passed-in values when unset, so benches can set programmatic defaults).
inline void ApplyFaultEnv(FaultOptions* faults) {
  faults->node_mttf = GetEnvDouble("THREESIGMA_FAULT_MTTF", faults->node_mttf);
  faults->node_mttr = GetEnvDouble("THREESIGMA_FAULT_MTTR", faults->node_mttr);
  faults->task_kill_prob = GetEnvDouble("THREESIGMA_FAULT_KILL_PROB", faults->task_kill_prob);
  faults->straggler_prob =
      GetEnvDouble("THREESIGMA_FAULT_STRAGGLER_PROB", faults->straggler_prob);
  faults->straggler_factor =
      GetEnvDouble("THREESIGMA_FAULT_STRAGGLER_FACTOR", faults->straggler_factor);
  faults->cycle_stall_prob =
      GetEnvDouble("THREESIGMA_FAULT_STALL_PROB", faults->cycle_stall_prob);
  faults->seed = static_cast<uint64_t>(
      GetEnvInt("THREESIGMA_FAULT_SEED", static_cast<int64_t>(faults->seed)));
}

// Overlays the THREESIGMA_OBS_* knobs (knob table in src/obs/obs.h) and, the
// first time any sink is configured, registers an atexit flush so every bench
// writes its sinks on normal exit without per-main plumbing.
inline void ApplyObsEnv(obs::Options* options) {
  obs::ApplyEnv(options);
  if (!options->any()) {
    return;
  }
  static const bool registered = [] {
    std::atexit([] {
      std::string error;
      if (!obs::Flush(&error)) {
        std::cerr << "observability export failed: " << error << "\n";
      }
    });
    return true;
  }();
  (void)registered;
}

// The GOOGLE-scale cluster for Fig. 12 (12,584 nodes ~ the trace's 12,583).
inline ClusterConfig ClusterGoogleScale() { return ClusterConfig::Uniform(8, 1573); }

// THREESIGMA_SOLVER_WARMSTART: basis warm-starting on/off (default on).
inline bool SolverWarmstartEnv() {
  return GetEnvInt("THREESIGMA_SOLVER_WARMSTART", 1) != 0;
}

// THREESIGMA_SOLVER_SHARDS: connected-component decomposition (default off,
// matching the production default).
inline bool SolverShardsEnv() {
  return GetEnvInt("THREESIGMA_SOLVER_SHARDS", 0) != 0;
}

// Baseline experiment configuration; `base_hours` is the workload length at
// default scale (the paper's counterpart is usually 2 or 5 hours).
inline ExperimentConfig MakeE2EConfig(double base_hours, double load = 1.4) {
  ExperimentConfig config;
  config.cluster = Cluster256();
  config.workload.env = EnvironmentKind::kGoogle;
  config.workload.duration = Hours(base_hours * BenchScale());
  config.workload.load = load;
  config.workload.seed = BenchSeed();
  config.sim.cycle_period = 10.0;
  config.sim.reactive_min_gap = 2.0;
  config.sim.seed = BenchSeed();
  config.sched.cycle_period = config.sim.cycle_period;
  config.sched.solver_threads =
      static_cast<int>(GetEnvInt("THREESIGMA_SOLVER_THREADS", 1));
  config.sched.solver_basis_warmstart = SolverWarmstartEnv();
  config.sched.solver_shards = SolverShardsEnv();
  config.sched.valuation_engine = GetEnvInt("THREESIGMA_VALUATION_ENGINE", 1) != 0;
  config.sched.valuation_cache = GetEnvInt("THREESIGMA_VALUATION_CACHE", 1) != 0;
  config.sched.valuation_crosscheck = GetEnvInt("THREESIGMA_VALUATION_CROSSCHECK", 0) != 0;
  ApplyFaultEnv(&config.sim.faults);
  ApplyObsEnv(&config.obs);
  return config;
}

inline std::vector<std::string> MetricsHeaders() {
  return {"system",       "SLO miss %",  "goodput (M-hr)", "SLO gp (M-hr)",
          "BE gp (M-hr)", "BE lat (s)",  "preempts",       "abandoned"};
}

inline std::vector<std::string> MetricsRow(const RunMetrics& m) {
  return {m.system,
          TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
          TablePrinter::Fmt(m.goodput_machine_hours, 1),
          TablePrinter::Fmt(m.slo_goodput_machine_hours, 1),
          TablePrinter::Fmt(m.be_goodput_machine_hours, 1),
          TablePrinter::Fmt(m.mean_be_latency_seconds, 0),
          std::to_string(m.preemptions),
          std::to_string(m.abandoned)};
}

inline void PrintHeaderBlock(const std::string& title, const std::string& paper_ref,
                             const GeneratedWorkload& workload) {
  std::cout << "==== " << title << " ====\n"
            << paper_ref << "\n"
            << "jobs=" << workload.jobs.size() << " pretrain=" << workload.pretrain.size()
            << " offered_load=" << TablePrinter::Fmt(workload.offered_load, 2)
            << " scale=" << GetEnvString("THREESIGMA_BENCH_SCALE", "default")
            << " seed=" << BenchSeed() << "\n\n";
}

}  // namespace threesigma

#endif  // BENCH_BENCH_UTIL_H_
