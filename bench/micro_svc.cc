// Service-layer micro-benchmarks: wire codec, framing, and RPC round-trips.
//
// The service must never make the scheduler the second-most expensive thing
// in the room: encode/decode and framing are per-RPC costs, and the loopback
// round-trip bounds the pure software overhead of one RPC (no kernel, no
// copy across a socket). CI uploads BENCH_svc.json from the perf-smoke job
// to track these series.

#include <string>

#include <benchmark/benchmark.h>

#include "src/cluster/cluster.h"
#include "src/sched/prio_scheduler.h"
#include "src/svc/client.h"
#include "src/svc/server.h"
#include "src/svc/transport.h"
#include "src/svc/wire.h"

namespace threesigma {
namespace {

svc::Request MakeSubmitRequest() {
  svc::Request request;
  request.verb = svc::Verb::kSubmitJob;
  request.request_id = 42;
  request.token = "bench-token-000123";
  request.job.id = 123;
  request.job.name = "gridmix-medium";
  request.job.user = "bench";
  request.job.type = JobType::kSlo;
  request.job.submit_time = 1234.5;
  request.job.true_runtime = 300.0;
  request.job.num_tasks = 8;
  request.job.deadline = 4000.0;
  request.job.preferred_groups = {0, 2};
  request.job.features = {"user=bench", "jobname=gridmix-medium"};
  return request;
}

void BM_EncodeSubmitRequest(benchmark::State& state) {
  const svc::Request request = MakeSubmitRequest();
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string payload = svc::EncodeRequest(request);
    bytes = payload.size();
    benchmark::DoNotOptimize(payload);
  }
  state.counters["payload_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeSubmitRequest);

void BM_DecodeSubmitRequest(benchmark::State& state) {
  const std::string payload = svc::EncodeRequest(MakeSubmitRequest());
  for (auto _ : state) {
    svc::Request decoded;
    std::string error;
    const bool ok = svc::DecodeRequest(payload, &decoded, &error);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeSubmitRequest);

void BM_EncodeReply(benchmark::State& state) {
  svc::Reply reply;
  reply.code = svc::StatusCode::kOk;
  reply.request_id = 42;
  reply.job_id = 123;
  for (auto _ : state) {
    const std::string payload = svc::EncodeReply(reply);
    benchmark::DoNotOptimize(payload);
  }
}
BENCHMARK(BM_EncodeReply);

void BM_DecodeReply(benchmark::State& state) {
  svc::Reply reply;
  reply.code = svc::StatusCode::kOk;
  reply.request_id = 42;
  reply.job_id = 123;
  const std::string payload = svc::EncodeReply(reply);
  for (auto _ : state) {
    svc::Reply decoded;
    std::string error;
    const bool ok = svc::DecodeReply(payload, &decoded, &error);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeReply);

void BM_ExtractFrames(benchmark::State& state) {
  // A receive buffer holding 64 back-to-back frames.
  const std::string payload = svc::EncodeRequest(MakeSubmitRequest());
  std::string buffer;
  constexpr int kFrames = 64;
  for (int i = 0; i < kFrames; ++i) {
    svc::AppendFrame(&buffer, payload);
  }
  for (auto _ : state) {
    size_t offset = 0;
    std::string frame;
    std::string error;
    int extracted = 0;
    while (svc::ExtractFrame(buffer, &offset, &frame, svc::kDefaultMaxFrameBytes, &error) ==
           svc::FrameResult::kFrame) {
      ++extracted;
    }
    benchmark::DoNotOptimize(extracted);
  }
  state.SetItemsProcessed(state.iterations() * kFrames);
}
BENCHMARK(BM_ExtractFrames);

// One full RPC through client, loopback transport, and server dispatch.
// ClusterState is state-size-independent, so the series is steady-state.
void BM_LoopbackClusterStateRpc(benchmark::State& state) {
  const ClusterConfig cluster = ClusterConfig::Uniform(2, 8);
  PrioScheduler scheduler(cluster);
  svc::LoopbackTransport transport;
  SimOptions sim;
  svc::Server server(cluster, &scheduler, sim, svc::ServiceOptions{}, &transport);
  auto channel = transport.Connect();
  channel->SetPump([&server]() { server.HandleReady(); });
  svc::ClientOptions options;
  options.sleep_on_backoff = false;
  svc::Client client(channel.get(), options);
  for (auto _ : state) {
    SimStateInfo info;
    uint64_t queue_depth = 0;
    std::string error;
    const bool ok = client.GetClusterState(&info, &queue_depth, &error);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_LoopbackClusterStateRpc);

// Submission path: admission + token bookkeeping + simulator injection.
// Fixed iteration count so simulator state growth stays bounded.
void BM_LoopbackSubmitRpc(benchmark::State& state) {
  const ClusterConfig cluster = ClusterConfig::Uniform(2, 8);
  PrioScheduler scheduler(cluster);
  svc::LoopbackTransport transport;
  SimOptions sim;
  svc::ServiceOptions service;
  service.admission_capacity = 1 << 20;
  svc::Server server(cluster, &scheduler, sim, service, &transport);
  auto channel = transport.Connect();
  channel->SetPump([&server]() { server.HandleReady(); });
  svc::ClientOptions options;
  options.sleep_on_backoff = false;
  svc::Client client(channel.get(), options);
  JobSpec spec;
  spec.name = "bench";
  spec.num_tasks = 1;
  spec.true_runtime = 60.0;
  int64_t i = 0;
  for (auto _ : state) {
    spec.submit_time = static_cast<double>(i);
    JobId assigned = 0;
    std::string error;
    const bool ok =
        client.SubmitJob(spec, "bench-" + std::to_string(i), &assigned, &error);
    benchmark::DoNotOptimize(ok);
    ++i;
  }
}
BENCHMARK(BM_LoopbackSubmitRpc)->Iterations(20000);

}  // namespace
}  // namespace threesigma

BENCHMARK_MAIN();
