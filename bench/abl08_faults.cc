// Ablation: fault injection — node churn at decreasing MTTF (src/faults).
//
// Sweeps per-node MTTF from "off" down to aggressive churn at a fixed MTTR.
// Expected: goodput is non-increasing as MTTF shrinks (less cluster survives,
// and killed runs turn occupancy into rework), downtime fraction and rework
// ratio grow, and the distribution-based 3Sigma degrades more gracefully than
// the runtime-unaware Prio because it re-plans against shrunken Eq. 3 supply
// instead of overcommitting crashed nodes.
//
// The THREESIGMA_FAULT_* env knobs overlay the non-swept processes (task
// kills, stragglers, cycle stalls) on every row; MTTF/MTTR come from the
// sweep itself.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.4);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  PrintHeaderBlock("Ablation: node churn (MTTF sweep)",
                   "Expectation: goodput non-increasing as MTTF shrinks; rework and "
                   "downtime grow",
                   workload);

  const double kMttfSweep[] = {0.0, 14400.0, 3600.0, 1200.0};
  TablePrinter table({"system", "MTTF (s)", "SLO miss %", "goodput (M-hr)", "gp/avail-hr",
                      "downtime %", "kills", "rework ratio", "stalls"});
  bool monotone = true;
  for (SystemKind kind : {SystemKind::kThreeSigma, SystemKind::kPrio}) {
    double prev_goodput = -1.0;
    for (double mttf : kMttfSweep) {
      ExperimentConfig c = config;
      c.sim.faults.node_mttf = mttf;
      c.sim.faults.node_mttr = 600.0;
      const RunMetrics m = RunSystem(kind, c, workload);
      table.AddRow({m.system, TablePrinter::Fmt(mttf, 0),
                    TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                    TablePrinter::Fmt(m.goodput_machine_hours, 1),
                    TablePrinter::Fmt(m.goodput_per_available_hour, 3),
                    TablePrinter::Fmt(100.0 * m.node_downtime_fraction, 2),
                    std::to_string(m.tasks_killed_by_faults),
                    TablePrinter::Fmt(m.rework_ratio, 3),
                    std::to_string(m.stalled_cycles)});
      // Small tolerance: churn can shuffle which jobs land inside the drain
      // window, so "non-increasing" is enforced up to 2% noise.
      if (prev_goodput >= 0.0 && m.goodput_machine_hours > prev_goodput * 1.02) {
        monotone = false;
      }
      prev_goodput = m.goodput_machine_hours;
    }
  }
  table.Print(std::cout);
  std::cout << (monotone ? "\nsweep: goodput non-increasing as MTTF shrinks (OK)\n"
                         : "\nsweep: WARNING goodput increased as MTTF shrank\n");
  return monotone ? 0 : 1;
}
