// Ablation: the adaptive over-estimate gating threshold (§4.2.3).
//
// 3σSched enables over-estimate handling when P(T <= deadline window) falls
// below a threshold. 0 disables OE handling entirely (3SigmaNoOE); 1 enables
// it for every SLO job (3SigmaNoAdapt). Expected: small thresholds capture
// most of the SLO-miss benefit; large thresholds over-extend utilities and
// burn best-effort goodput on hopeless jobs.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  const std::vector<double> thresholds = {0.0, 0.01, 0.05, 0.2, 0.5, 1.0};

  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.4);
  // Tight deadlines stress over-estimate handling the most.
  config.workload.deadline_slacks = {20.0, 40.0};
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  PrintHeaderBlock("Ablation: adaptive OE threshold (3Sigma)",
                   "Expectation: small thresholds ~ best; threshold 1.0 ~ 3SigmaNoAdapt",
                   workload);

  TablePrinter table({"threshold", "SLO miss %", "SLO gp (M-hr)", "BE gp (M-hr)",
                      "abandoned"});
  for (double threshold : thresholds) {
    ExperimentConfig c = config;
    // MakeSystem re-asserts the policy toggles per system kind, so the
    // endpoints map onto the named ablation systems.
    SystemKind kind = SystemKind::kThreeSigma;
    if (threshold <= 0.0) {
      kind = SystemKind::kThreeSigmaNoOE;
    } else if (threshold >= 1.0) {
      kind = SystemKind::kThreeSigmaNoAdapt;
    } else {
      c.sched.oe_probability_threshold = threshold;
    }
    const RunMetrics m = RunSystem(kind, c, workload);
    const std::string label = threshold <= 0.0   ? "off (NoOE)"
                              : threshold >= 1.0 ? "always (NoAdapt)"
                                                 : TablePrinter::Fmt(threshold, 2);
    table.AddRow({label, TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  TablePrinter::Fmt(m.slo_goodput_machine_hours, 1),
                  TablePrinter::Fmt(m.be_goodput_machine_hours, 1),
                  std::to_string(m.abandoned)});
  }
  table.Print(std::cout);
  return 0;
}
