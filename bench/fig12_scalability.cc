// Fig. 12 — scalability on a >12,500-node cluster (GOOGLE) under
// SCALABILITY-n workloads (n jobs/hour, load 0.95): per-cycle scheduling
// runtime and solver runtime for distribution-based vs point-based
// scheduling, plus 3σPredict lookup latency (§6.5 reports max 14 ms).
//
// Paper-reported shape: both systems' cycle times stay in the low seconds up
// to 4000 jobs/hour; distribution-based scheduling adds a moderate increase
// (more constraint terms, same number of decision variables); the solver is
// a non-trivial fraction of the cycle; predictor latency is negligible.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/stats.h"

using namespace threesigma;

namespace {

struct ScaleResult {
  RunMetrics dist;
  RunMetrics point;
};

}  // namespace

int main() {
  const std::vector<int> rates = {2000, 3000, 4000};
  // Default scale runs a slice of the paper's 5-hour window; the cycle-time
  // distribution stabilizes within minutes of simulated time.
  const double hours = 0.2 * BenchScale();

  std::cout << "==== Fig. 12: scheduling-cycle and solver runtime at >12.5k nodes ====\n";
  std::cout << "Paper: cycle times low seconds; Dist moderately above Point; solver a "
               "non-trivial fraction\n"
            << "cluster=" << ClusterGoogleScale().total_nodes() << " nodes, load 0.95, "
            << "window=" << hours << "h\n\n";

  TablePrinter cycle({"jobs/hour", "Dist mean (s)", "Dist max (s)", "Point mean (s)",
                      "Point max (s)"});
  TablePrinter solver({"jobs/hour", "Dist mean (s)", "Dist max (s)", "Point mean (s)",
                       "Point max (s)", "Dist max vars", "Dist max rows"});
  for (int rate : rates) {
    ExperimentConfig config;
    config.cluster = ClusterGoogleScale();
    config.workload.duration = Hours(hours);
    config.workload.load = 0.95;
    config.workload.fixed_job_count = static_cast<int>(rate * hours);
    config.workload.seed = BenchSeed() + static_cast<uint64_t>(rate);
    config.sim.cycle_period = 10.0;
    config.sim.reactive_min_gap = 2.0;
    config.sim.seed = config.workload.seed;
    config.sched.cycle_period = config.sim.cycle_period;
    // Give the big-cluster MILP the paper's "fraction of the interval".
    config.sched.solver_time_limit_seconds = 1.0;
    config.sched.max_pending_considered = 96;
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);

    const RunMetrics dist = RunSystem(SystemKind::kThreeSigma, config, workload);
    const RunMetrics point = RunSystem(SystemKind::kPointRealEst, config, workload);
    cycle.AddRow({std::to_string(rate), TablePrinter::Fmt(dist.mean_cycle_seconds, 3),
                  TablePrinter::Fmt(dist.max_cycle_seconds, 3),
                  TablePrinter::Fmt(point.mean_cycle_seconds, 3),
                  TablePrinter::Fmt(point.max_cycle_seconds, 3)});
    solver.AddRow({std::to_string(rate), TablePrinter::Fmt(dist.mean_solver_seconds, 3),
                   TablePrinter::Fmt(dist.max_solver_seconds, 3),
                   TablePrinter::Fmt(point.mean_solver_seconds, 3),
                   TablePrinter::Fmt(point.max_solver_seconds, 3),
                   std::to_string(dist.max_milp_variables),
                   std::to_string(dist.max_milp_rows)});
  }
  std::cout << "(a) Scheduling cycle runtime:\n";
  cycle.Print(std::cout);
  std::cout << "\n(b) Solver runtime:\n";
  solver.Print(std::cout);

  // (c) Parallel solver + expected-capacity cache: same workload, sweeping
  // branch-and-bound worker threads (the returned schedules are identical by
  // construction; only wall clock moves, and only on multi-core hardware) and
  // toggling the incremental Eq. 3 cache.
  std::cout << "\n(c) Wave-parallel solver and capacity-cache ablation:\n";
  {
    TablePrinter par({"config", "mean solver (s)", "speedup", "nodes/s",
                      "mean cycle (s)", "cache hit %"});
    ExperimentConfig config;
    config.cluster = ClusterGoogleScale();
    config.workload.duration = Hours(hours);
    config.workload.load = 0.95;
    config.workload.fixed_job_count = static_cast<int>(2000 * hours);
    config.workload.seed = BenchSeed();
    config.sim.cycle_period = 10.0;
    config.sim.reactive_min_gap = 2.0;
    config.sim.seed = config.workload.seed;
    config.sched.cycle_period = config.sim.cycle_period;
    config.sched.solver_time_limit_seconds = 1.0;
    config.sched.max_pending_considered = 96;
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);

    double base_solver = 0.0;
    for (const int threads : {1, 2, 4}) {
      config.sched.solver_threads = threads;
      config.sched.capacity_cache = true;
      const RunMetrics m = RunSystem(SystemKind::kThreeSigma, config, workload);
      if (threads == 1) {
        base_solver = m.mean_solver_seconds;
      }
      const double speedup =
          m.mean_solver_seconds > 0.0 ? base_solver / m.mean_solver_seconds : 0.0;
      par.AddRow({std::to_string(threads) + " thread" + (threads == 1 ? "" : "s"),
                  TablePrinter::Fmt(m.mean_solver_seconds, 3), TablePrinter::Fmt(speedup, 2),
                  TablePrinter::Fmt(m.solver_nodes_per_second, 0),
                  TablePrinter::Fmt(m.mean_cycle_seconds, 3),
                  TablePrinter::Fmt(100.0 * m.capacity_cache_hit_rate, 1)});
    }
    config.sched.solver_threads = 1;
    config.sched.capacity_cache = false;
    const RunMetrics nocache = RunSystem(SystemKind::kThreeSigma, config, workload);
    par.AddRow({"1 thread, no cache", TablePrinter::Fmt(nocache.mean_solver_seconds, 3), "-",
                TablePrinter::Fmt(nocache.solver_nodes_per_second, 0),
                TablePrinter::Fmt(nocache.mean_cycle_seconds, 3), "-"});
    // Cold-basis ablation: every branch-and-bound node solves its LP from the
    // slack basis instead of re-optimizing the parent's basis with dual pivots
    // (deterministic, but degenerate LP ties may break differently than warm).
    config.sched.capacity_cache = true;
    config.sched.solver_basis_warmstart = false;
    const RunMetrics coldbasis = RunSystem(SystemKind::kThreeSigma, config, workload);
    par.AddRow({"1 thread, cold basis",
                TablePrinter::Fmt(coldbasis.mean_solver_seconds, 3), "-",
                TablePrinter::Fmt(coldbasis.solver_nodes_per_second, 0),
                TablePrinter::Fmt(coldbasis.mean_cycle_seconds, 3),
                TablePrinter::Fmt(100.0 * coldbasis.capacity_cache_hit_rate, 1)});
    par.Print(std::cout);

    // (d) Shard decomposition sweep (--solver-shards): the same workload with
    // the per-cycle MILP split into connected components. The SCALABILITY
    // cluster is uniform, so every job is eligible on every group and cycles
    // stay one component (mean shards ~ 1, node ratio ~ 1x) — the honest
    // number for this workload. The decomposable regime (disjoint eligible
    // group sets, >= 4 components) is measured by micro_solver's
    // BM_MilpShardDecomposition, where node counts drop superlinearly; see
    // EXPERIMENTS.md.
    std::cout << "\n(d) Shard decomposition sweep (node budget unchanged; work metric is "
                 "total B&B nodes):\n";
    TablePrinter shards({"config", "mean solver (s)", "total B&B nodes", "node ratio",
                         "mean shards", "max shard vars"});
    config.sched.solver_threads = 1;
    config.sched.capacity_cache = true;
    config.sched.solver_basis_warmstart = true;
    config.sched.solver_shards = false;
    const RunMetrics shard_off = RunSystem(SystemKind::kThreeSigma, config, workload);
    shards.AddRow({"shards off", TablePrinter::Fmt(shard_off.mean_solver_seconds, 3),
                   std::to_string(shard_off.total_milp_nodes), "1.00", "-", "-"});
    config.sched.solver_shards = true;
    for (const int threads : {1, 4}) {
      config.sched.solver_threads = threads;
      const RunMetrics m = RunSystem(SystemKind::kThreeSigma, config, workload);
      const double ratio = m.total_milp_nodes > 0
                               ? static_cast<double>(shard_off.total_milp_nodes) /
                                     static_cast<double>(m.total_milp_nodes)
                               : 0.0;
      shards.AddRow({"shards on, " + std::to_string(threads) + " thread" +
                         (threads == 1 ? "" : "s"),
                     TablePrinter::Fmt(m.mean_solver_seconds, 3),
                     std::to_string(m.total_milp_nodes), TablePrinter::Fmt(ratio, 2),
                     TablePrinter::Fmt(m.mean_milp_shards, 2),
                     std::to_string(m.max_milp_shard_vars)});
    }
    shards.Print(std::cout);
    config.sched.solver_shards = false;
  }

  // §6.5: 3σPredict latency at job submission. Build a loaded predictor and
  // time lookups.
  std::cout << "\n==== 3σPredict lookup latency (paper: max 14 ms) ====\n";
  {
    ExperimentConfig config;
    config.cluster = ClusterGoogleScale();
    config.workload.duration = Hours(0.2);
    config.workload.load = 0.95;
    config.workload.pretrain_jobs = 20000;
    config.workload.seed = BenchSeed();
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
    ThreeSigmaPredictor predictor;
    for (const JobSpec& job : workload.pretrain) {
      predictor.RecordCompletion(job.features, job.true_runtime);
    }
    RunningStats latency_us;
    for (const JobSpec& job : workload.jobs) {
      const auto t0 = std::chrono::steady_clock::now();
      const RuntimePrediction pred = predictor.Predict(job.features, job.true_runtime);
      const std::chrono::duration<double, std::micro> dt =
          std::chrono::steady_clock::now() - t0;
      latency_us.Add(dt.count());
      (void)pred;
    }
    TablePrinter t({"lookups", "mean (us)", "max (us)", "feature histories"});
    t.AddRow({std::to_string(latency_us.count()), TablePrinter::Fmt(latency_us.mean(), 1),
              TablePrinter::Fmt(latency_us.max(), 1),
              std::to_string(predictor.history_count())});
    t.Print(std::cout);
  }
  return 0;
}
