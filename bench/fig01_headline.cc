// Fig. 1 — headline comparison: SLO miss rate of 3Sigma vs PointPerfEst,
// PointRealEst, and Prio on a Google-derived E2E workload (256-node cluster).
//
// Paper-reported (RC256, 2h E2E): 3Sigma ~4.4%, PointPerfEst ~3.3%,
// PointRealEst ~18%, Prio ~12%. The shape to reproduce: 3Sigma approaches
// PointPerfEst, PointRealEst is several times worse, Prio sits in between.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/1.0);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  PrintHeaderBlock("Fig. 1: SLO miss rate, four scheduling approaches",
                   "Paper: 3Sigma 4.4% | PointPerfEst 3.3% | PointRealEst 18% | Prio 12%",
                   workload);

  TablePrinter table({"system", "SLO miss %", "vs 3Sigma"});
  const std::vector<SystemKind> systems = {SystemKind::kThreeSigma, SystemKind::kPointPerfEst,
                                           SystemKind::kPointRealEst, SystemKind::kPrio};
  std::vector<RunMetrics> results = RunSystems(systems, config, workload);
  const double base = results[0].slo_miss_rate_percent;
  for (const RunMetrics& m : results) {
    table.AddRow({m.system, TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  base > 0.0 ? TablePrinter::Fmt(m.slo_miss_rate_percent / base, 2) + "x"
                             : "-"});
  }
  table.Print(std::cout);
  return 0;
}
