// Snapshot codec micro-benchmarks: serialize (write) and restore (read)
// throughput for a realistic mid-run checkpoint, plus raw CRC speed.
//
// Reported counters:
//   bytes_per_second  — snapshot MB/s for the operation under test
//   snapshot_bytes    — full checkpoint size
//   bytes_per_job     — checkpoint size amortized over workload jobs
//
// CI uploads the JSON as BENCH_snapshot.json to track the trajectory across
// commits (wall-clock on shared runners is noisy; the size counters are
// deterministic).

#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "src/core/experiment.h"
#include "src/snapshot/snapshot_io.h"

namespace threesigma {
namespace {

// A mid-run 3Sigma system under chaos: trained predictor histories, live
// jobs, a populated event queue, warm-started scheduler state — the
// checkpoint payload a production run would carry.
struct Fixture {
  ExperimentConfig config;
  GeneratedWorkload workload;
  SystemInstance instance;
  std::unique_ptr<Simulator> sim;
  std::string buffer;

  Fixture() {
    config.cluster = ClusterConfig::Uniform(4, 16);
    config.workload.duration = Minutes(20.0);
    config.workload.load = 1.3;
    config.workload.model_sample_jobs = 800;
    config.workload.pretrain_jobs = 2000;
    config.workload.seed = 7;
    config.sim.cycle_period = 10.0;
    config.sim.seed = 7;
    config.sched.cycle_period = config.sim.cycle_period;
    config.sched.solver_time_limit_seconds = 0.0;
    config.sim.faults.node_mttf = 2000.0;
    config.sim.faults.task_kill_prob = 0.03;
    workload = GenerateWorkload(config.cluster, config.workload);
    instance = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
    for (const JobSpec& job : workload.pretrain) {
      instance.predictor->RecordCompletion(job.features, job.true_runtime);
    }
    sim = std::make_unique<Simulator>(config.cluster, instance.scheduler.get(), workload.jobs,
                                      config.sim);
    for (int i = 0; i < 30 && sim->Step(); ++i) {
    }
    buffer = sim->SaveStateToBuffer();
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_SnapshotWrite(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string buffer = f.sim->SaveStateToBuffer();
    bytes = buffer.size();
    benchmark::DoNotOptimize(buffer);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_job"] =
      static_cast<double>(bytes) / static_cast<double>(f.workload.jobs.size());
}
BENCHMARK(BM_SnapshotWrite)->Unit(benchmark::kMillisecond);

void BM_SnapshotRead(benchmark::State& state) {
  Fixture& f = GetFixture();
  // Restore into a separate, identically configured system so the fixture
  // simulator is never perturbed.
  SystemInstance target =
      MakeSystem(SystemKind::kThreeSigma, f.config.cluster, f.config.sched);
  Simulator sim(f.config.cluster, target.scheduler.get(), {}, f.config.sim);
  for (auto _ : state) {
    std::string error;
    const bool ok = sim.TryRestoreStateFromBuffer(f.buffer, &error);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(f.buffer.size()) * state.iterations());
  state.counters["snapshot_bytes"] = static_cast<double>(f.buffer.size());
  state.counters["bytes_per_job"] =
      static_cast<double>(f.buffer.size()) / static_cast<double>(f.workload.jobs.size());
}
BENCHMARK(BM_SnapshotRead)->Unit(benchmark::kMillisecond);

void BM_SnapshotCrc32(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    const uint32_t crc = Crc32(f.buffer.data(), f.buffer.size());
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(f.buffer.size()) * state.iterations());
}
BENCHMARK(BM_SnapshotCrc32)->Unit(benchmark::kMicrosecond);

void BM_SnapshotSectionDiff(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    const std::vector<std::string> diff =
        DiffSnapshotSections(f.buffer, f.buffer, {"timing"});
    benchmark::DoNotOptimize(diff);
  }
  state.SetBytesProcessed(static_cast<int64_t>(f.buffer.size()) * 2 * state.iterations());
}
BENCHMARK(BM_SnapshotSectionDiff)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace threesigma

BENCHMARK_MAIN();
