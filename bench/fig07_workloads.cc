// Fig. 7 — the four systems under workloads from three environments
// (Google E2E, HEDGEFUND_E2E, MUSTANG_E2E) on the simulated cluster.
//
// Paper-reported shape: 3Sigma outperforms PointRealEst and Prio on SLO miss
// rate and goodput for every workload, approximately matching PointPerfEst —
// and slightly *beating* PointPerfEst on HedgeFund/Mustang (perfect runtimes
// do not imply perfect schedules when future arrivals are unknown).
// PointRealEst stays poor even on Mustang, where most (but not all) point
// estimates are accurate.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  const std::vector<SystemKind> systems = {SystemKind::kThreeSigma, SystemKind::kPointPerfEst,
                                           SystemKind::kPointRealEst, SystemKind::kPrio};
  bool first = true;
  for (EnvironmentKind env : {EnvironmentKind::kGoogle, EnvironmentKind::kHedgeFund,
                              EnvironmentKind::kMustang}) {
    ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.75);
    config.workload.env = env;
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
    if (first) {
      PrintHeaderBlock("Fig. 7: three environments x four systems (SC256)",
                       "Paper: 3Sigma beats RealEst/Prio everywhere, ~matches PerfEst",
                       workload);
      first = false;
    }
    std::cout << "---- Workload: " << EnvironmentName(env) << "_E2E ----\n";
    TablePrinter table(MetricsHeaders());
    for (const RunMetrics& m : RunSystems(systems, config, workload)) {
      table.AddRow(MetricsRow(m));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
