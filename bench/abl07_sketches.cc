// Ablation: the runtime-distribution sketch — Ben-Haim & Tom-Tov streaming
// histogram (the paper's choice, [1]) vs a t-digest — on runtime-like
// streams: quantile accuracy, CDF accuracy at scheduler-relevant points, and
// ingest cost.
//
// Expected: both sketches are accurate enough for scheduling; the t-digest
// is tighter in the tails (quantile-adaptive resolution), the BH-TT
// histogram is simpler and exact-count-preserving. This supports the design
// note in DESIGN.md that the sketch choice is not load-bearing.

#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "src/common/env.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/histogram/stream_histogram.h"
#include "src/histogram/tdigest.h"

using namespace threesigma;

namespace {

struct StreamSpec {
  const char* name;
  int shape;  // 0 lognormal, 1 heavy pareto-ish mix, 2 bimodal.
};

double Draw(Rng& rng, int shape) {
  switch (shape) {
    case 0:
      return rng.LogNormal(5.0, 1.0);
    case 1:
      return rng.Bernoulli(0.9) ? rng.LogNormal(4.0, 0.5) : rng.BoundedPareto(100.0, 1e5, 1.0);
    default:
      return rng.Bernoulli(0.6) ? rng.Normal(120.0, 10.0) : rng.Normal(3600.0, 300.0);
  }
}

}  // namespace

int main() {
  const int n = static_cast<int>(200000 * BenchScale());
  const std::vector<StreamSpec> streams = {
      {"lognormal", 0}, {"heavy-tail mix", 1}, {"bimodal", 2}};

  std::cout << "==== Ablation: BH-TT histogram (80 bins) vs t-digest (d=100) ====\n";
  std::cout << "Quantile relative error vs exact, over " << n << " samples per stream\n\n";

  TablePrinter table({"stream", "quantile", "BH-TT rel err %", "t-digest rel err %"});
  TablePrinter ingest({"stream", "BH-TT ingest (ns/sample)", "t-digest ingest (ns/sample)"});
  for (const StreamSpec& spec : streams) {
    Rng rng(BenchSeed() + static_cast<uint64_t>(spec.shape));
    std::vector<double> all;
    all.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      all.push_back(std::max(Draw(rng, spec.shape), 0.0));
    }

    StreamHistogram hist(80);
    const auto t0 = std::chrono::steady_clock::now();
    for (double v : all) {
      hist.Update(v);
    }
    const auto t1 = std::chrono::steady_clock::now();
    TDigest digest(100.0);
    for (double v : all) {
      digest.Update(v);
    }
    const auto t2 = std::chrono::steady_clock::now();

    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      const double exact = Quantile(all, q);
      const double h_err = std::fabs(hist.Quantile(q) - exact) / exact * 100.0;
      const double d_err = std::fabs(digest.Quantile(q) - exact) / exact * 100.0;
      table.AddRow({spec.name, "p" + TablePrinter::Fmt(q * 100, q >= 0.999 ? 1 : 0),
                    TablePrinter::Fmt(h_err, 2), TablePrinter::Fmt(d_err, 2)});
    }
    const double h_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() / n;
    const double d_ns = std::chrono::duration<double, std::nano>(t2 - t1).count() / n;
    ingest.AddRow({spec.name, TablePrinter::Fmt(h_ns, 1), TablePrinter::Fmt(d_ns, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nIngest cost:\n";
  ingest.Print(std::cout);
  return 0;
}
