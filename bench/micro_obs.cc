// Observability overhead micro-benchmarks.
//
// The subsystem's compiled-in-but-gated contract is: with every facility
// disabled, an instrumentation site costs one relaxed atomic load and branch
// (spans) or one striped relaxed fetch_add (counters). This bench measures
// those site costs directly, then scales them by the number of sites a
// fig06_e2e-configuration run actually executes to report the headline
//
//   disabled_overhead_percent — estimated instrumentation cost with all
//       gates off, as a percentage of the end-to-end simulation wall clock.
//
// The acceptance floor for the subsystem is < 1%. CI uploads BENCH_obs.json
// to track the trajectory (wall clock on shared runners is noisy; the site
// counts are deterministic).
//
// Supporting series: per-site disabled/enabled span cost, striped counter
// increment cost, and the full e2e run with observability off vs fully on.

#include <chrono>
#include <cstdint>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/obs/obs.h"

namespace threesigma {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// The fig06_e2e configuration (high-fidelity "RC256" mode) at a
// bench-friendly window: instrumentation density per cycle is what matters,
// not the window length.
ExperimentConfig Fig06Config() {
  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/1.0);
  config.workload.duration = Minutes(6.0);
  config.sim.fidelity = SimFidelity::kHighFidelity;
  return config;
}

struct Fixture {
  ExperimentConfig config;
  GeneratedWorkload workload;

  Fixture() : config(Fig06Config()) {
    workload = GenerateWorkload(config.cluster, config.workload);
  }
};

Fixture& GetFixture() {
  static Fixture* const fixture = new Fixture();
  return *fixture;
}

void ConfigureAllOn() {
  obs::Options options;
  options.tracing = true;
  options.profiler = true;
  options.decisions = true;
  obs::Configure(options);
}

// One span site with the gate off: the promised single load + branch.
void BM_DisabledSpanSite(benchmark::State& state) {
  obs::ResetAll();
  for (auto _ : state) {
    TS_OBS_SPAN("bench.disabled_site", obs::Phase::kOther);
  }
}
BENCHMARK(BM_DisabledSpanSite);

// The same site with tracing on: two clock reads + one ring write.
void BM_EnabledSpanSite(benchmark::State& state) {
  obs::ResetAll();
  obs::Options options;
  options.tracing = true;
  obs::Configure(options);
  for (auto _ : state) {
    TS_OBS_SPAN("bench.enabled_site", obs::Phase::kOther);
  }
  obs::ResetAll();
}
BENCHMARK(BM_EnabledSpanSite);

// A registry counter bump (ungated; identical on disabled and enabled runs).
void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("bench.counter_site");
  for (auto _ : state) {
    counter->Increment();
  }
  obs::ResetAll();
}
BENCHMARK(BM_CounterIncrement);

// Full fig06-config simulation with every facility off — the production
// default — plus the headline disabled-overhead estimate.
void BM_E2EObsDisabled(benchmark::State& state) {
  Fixture& f = GetFixture();
  obs::ResetAll();
  double run_seconds = 0.0;
  int64_t runs = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    SimResult result = SimulateSystem(SystemKind::kThreeSigma, f.config, f.workload);
    run_seconds += SecondsSince(start);
    ++runs;
    benchmark::DoNotOptimize(result.jobs.data());
  }

  // Per-site disabled cost, measured inline on this machine.
  obs::ResetAll();
  constexpr int64_t kProbe = 8'000'000;
  const auto probe_start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < kProbe; ++i) {
    TS_OBS_SPAN("bench.probe_site", obs::Phase::kOther);
  }
  const double site_seconds = SecondsSince(probe_start) / static_cast<double>(kProbe);

  // How many gated sites one run executes: spans emitted (retained +
  // overwritten) from a traced replay, counter adds from the registry (an
  // upper bound — Add(n) counts n — and a fetch_add costs about the same as
  // the span gate, so the estimate stays conservative).
  ConfigureAllOn();
  obs::Tracer::Global().Clear();
  (void)SimulateSystem(SystemKind::kThreeSigma, f.config, f.workload);
  const double span_sites =
      static_cast<double>(obs::Tracer::Global().CollectSpans().size()) +
      static_cast<double>(obs::Tracer::Global().dropped());
  double counter_adds = 0.0;
  for (const auto& [name, value] : obs::MetricsRegistry::Global().CounterValues()) {
    counter_adds += static_cast<double>(value);
  }
  obs::ResetAll();

  const double e2e_seconds = run_seconds / static_cast<double>(runs);
  state.counters["e2e_seconds"] = e2e_seconds;
  state.counters["span_sites"] = span_sites;
  state.counters["counter_adds"] = counter_adds;
  state.counters["site_ns"] = site_seconds * 1e9;
  state.counters["disabled_overhead_percent"] =
      100.0 * (span_sites + counter_adds) * site_seconds / e2e_seconds;
}
BENCHMARK(BM_E2EObsDisabled)->Unit(benchmark::kMillisecond);

// The same simulation with tracing + profiler + decision log all on; the
// delta against BM_E2EObsDisabled is the fully-enabled cost (and the two
// must produce identical scheduling decisions — tests/obs_property_test.cc).
void BM_E2EObsEnabled(benchmark::State& state) {
  Fixture& f = GetFixture();
  obs::ResetAll();
  ConfigureAllOn();
  for (auto _ : state) {
    SimResult result = SimulateSystem(SystemKind::kThreeSigma, f.config, f.workload);
    benchmark::DoNotOptimize(result.jobs.data());
  }
  state.counters["spans_retained"] =
      static_cast<double>(obs::Tracer::Global().CollectSpans().size());
  state.counters["profiler_rows"] =
      static_cast<double>(obs::CycleProfiler::Global().rows().size());
  obs::ResetAll();
}
BENCHMARK(BM_E2EObsEnabled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace threesigma

BENCHMARK_MAIN();
