// Ablation: equivalence-set (node-group) count at fixed cluster size
// (§4.3.3: "the complexity of MILP depends on the number of equivalence sets
// rather than the cluster size").
//
// Expected: MILP variables/rows and solver time grow with the group count,
// not the 256-node cluster size; scheduling quality is fairly insensitive
// (more groups = finer placement choices but smaller groups cap gang width).

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  struct Point {
    int groups;
    int nodes_per_group;
  };
  const std::vector<Point> sweep = {{2, 128}, {4, 64}, {8, 32}, {16, 16}};

  std::cout << "==== Ablation: equivalence sets at a fixed 256 nodes (3Sigma) ====\n";
  std::cout << "Expectation: solver cost tracks group count, not node count\n\n";

  TablePrinter table({"groups", "nodes/group", "SLO miss %", "goodput (M-hr)",
                      "mean solver (ms)", "max vars", "max rows"});
  for (const Point& p : sweep) {
    ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.4);
    config.cluster = ClusterConfig::Uniform(p.groups, p.nodes_per_group);
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
    const RunMetrics m = RunSystem(SystemKind::kThreeSigma, config, workload);
    table.AddRow({std::to_string(p.groups), std::to_string(p.nodes_per_group),
                  TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  TablePrinter::Fmt(m.goodput_machine_hours, 1),
                  TablePrinter::Fmt(m.mean_solver_seconds * 1000, 1),
                  std::to_string(m.max_milp_variables), std::to_string(m.max_milp_rows)});
  }
  table.Print(std::cout);
  std::cout << "\nNote: workloads are regenerated per cluster shape (gang width is capped\n"
               "at the group size), so rows compare configurations, not identical jobs.\n";
  return 0;
}
