// Ablation: the §2.2 "stochastic scheduler" heuristic — point estimates
// padded by k standard deviations of the predicted distribution — vs real
// distribution-based scheduling.
//
// Expected (the paper's claim about mitigation heuristics): padding helps a
// plain point scheduler (under-estimates shrink), but wastes capacity on
// over-padded jobs and "does not eliminate the problem" — 3Sigma with the
// full distribution stays ahead.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  const std::vector<double> paddings = {0.0, 0.5, 1.0, 2.0};

  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.4);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  PrintHeaderBlock("Ablation: mean + k*sigma padding vs full distributions",
                   "Expectation: padding helps point scheduling but 3Sigma stays ahead",
                   workload);

  TablePrinter table({"system", "SLO miss %", "goodput (M-hr)", "BE lat (s)"});
  for (double k : paddings) {
    SystemInstance instance = MakePaddedPointSystem(k, config.cluster, config.sched);
    const std::string label =
        k == 0.0 ? "point (k=0, ~PointRealEst)" : "point + " + TablePrinter::Fmt(k, 1) + "s";
    const RunMetrics m = RunSystemInstance(instance, label, config, workload);
    table.AddRow({m.system, TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  TablePrinter::Fmt(m.goodput_machine_hours, 1),
                  TablePrinter::Fmt(m.mean_be_latency_seconds, 0)});
  }
  const RunMetrics ts = RunSystem(SystemKind::kThreeSigma, config, workload);
  table.AddRow({ts.system + " (full distribution)",
                TablePrinter::Fmt(ts.slo_miss_rate_percent, 1),
                TablePrinter::Fmt(ts.goodput_machine_hours, 1),
                TablePrinter::Fmt(ts.mean_be_latency_seconds, 0)});
  table.Print(std::cout);
  return 0;
}
