// Ablation: MILP solving vs utility-greedy packing over the identical valued
// options (§4.3's central design choice: "all pending requests may be
// considered in aggregate").
//
// Expected: greedy is much cheaper per cycle but loses the joint decisions —
// it cannot trade one job's placement against another's, and it cannot
// preempt — so SLO misses rise, most visibly at tight slack.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  std::cout << "==== Ablation: MILP vs greedy packing backend (3Sigma valuations) ====\n";
  std::cout << "Expectation: greedy cheaper per cycle, worse SLO misses\n\n";

  TablePrinter table({"slacks", "backend", "SLO miss %", "goodput (M-hr)",
                      "mean solver (ms)", "preempts"});
  for (const bool tight : {true, false}) {
    ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.4);
    config.workload.deadline_slacks =
        tight ? std::vector<double>{20.0, 40.0} : std::vector<double>{60.0, 80.0};
    config.workload.seed = BenchSeed() + (tight ? 1 : 2);
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
    for (const SolverBackend backend : {SolverBackend::kMilp, SolverBackend::kGreedy}) {
      ExperimentConfig c = config;
      c.sched.backend = backend;
      const RunMetrics m = RunSystem(SystemKind::kThreeSigma, c, workload);
      table.AddRow({tight ? "20/40%" : "60/80%",
                    backend == SolverBackend::kMilp ? "MILP" : "greedy",
                    TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                    TablePrinter::Fmt(m.goodput_machine_hours, 1),
                    TablePrinter::Fmt(m.mean_solver_seconds * 1000, 2),
                    std::to_string(m.preemptions)});
    }
  }
  table.Print(std::cout);
  return 0;
}
