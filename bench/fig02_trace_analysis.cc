// Fig. 2 — trace analyses across the three environments:
//   (a) runtime CDFs (heavy-tailed),
//   (b) CDF of per-user-group runtime CoV,
//   (c) CDF of per-resource-request-group runtime CoV,
//   (d) histogram of JVuPredict-style estimate errors.
//
// Paper-reported shapes: runtimes span ~5 decades; large fractions of
// user/resource groups have CoV > 1 (more in HedgeFund/Mustang than Google);
// most estimates land near 0% error but 8% (Google) to 23% (Mustang) are off
// by 2x or more, with heavy tails on both sides.

#include <cmath>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/predict/predictor.h"
#include "src/workload/trace_model.h"

using namespace threesigma;

namespace {

struct EnvAnalysis {
  std::vector<double> runtimes;
  std::vector<double> user_covs;
  std::vector<double> resource_covs;
  std::vector<double> estimates;
  std::vector<double> actuals;
};

EnvAnalysis Analyze(EnvironmentKind kind, int num_jobs, uint64_t seed) {
  EnvAnalysis out;
  const EnvironmentModel model = EnvironmentModel::Make(kind, 64, seed);
  Rng rng(seed + 1);
  ThreeSigmaPredictor predictor;  // Its point estimates ARE the JVuPredict scheme.
  std::map<std::string, RunningStats> by_user;
  std::map<int, RunningStats> by_resources;
  const int warmup = num_jobs / 5;
  for (int i = 0; i < num_jobs; ++i) {
    const TraceJob job = model.Sample(rng);
    out.runtimes.push_back(job.runtime);
    by_user[job.user].Add(job.runtime);
    int bucket = 1;
    while (bucket < job.num_tasks) {
      bucket *= 2;
    }
    by_resources[bucket].Add(job.runtime);

    // Online replay: predict with history so far, then record (the §2.1
    // methodology). A warmup prefix seeds the histories.
    const JobFeatures features = MakeJobFeatures(job);
    if (i >= warmup) {
      const RuntimePrediction pred = predictor.Predict(features, job.runtime);
      if (pred.from_history) {
        out.estimates.push_back(pred.point_estimate);
        out.actuals.push_back(job.runtime);
      }
    }
    predictor.RecordCompletion(features, job.runtime);
  }
  for (const auto& [user, stats] : by_user) {
    if (stats.count() >= 5) {
      out.user_covs.push_back(stats.cov());
    }
  }
  for (const auto& [bucket, stats] : by_resources) {
    if (stats.count() >= 5) {
      out.resource_covs.push_back(stats.cov());
    }
  }
  return out;
}

std::string CdfRow(std::vector<double> values, double q) {
  if (values.empty()) {
    return "-";
  }
  return TablePrinter::Fmt(Quantile(std::move(values), q), 2);
}

double FractionAbove(const std::vector<double>& values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  int count = 0;
  for (double v : values) {
    if (v > threshold) {
      ++count;
    }
  }
  return 100.0 * count / static_cast<double>(values.size());
}

}  // namespace

int main() {
  const int num_jobs = static_cast<int>(30000 * BenchScale());
  const std::vector<EnvironmentKind> kinds = {
      EnvironmentKind::kGoogle, EnvironmentKind::kHedgeFund, EnvironmentKind::kMustang};
  std::map<EnvironmentKind, EnvAnalysis> analyses;
  for (EnvironmentKind kind : kinds) {
    analyses[kind] = Analyze(kind, num_jobs, BenchSeed());
  }

  std::cout << "==== Fig. 2(a): runtime CDF (seconds at percentile) ====\n";
  std::cout << "Paper: heavy-tailed, spanning ~10^0..10^5 seconds\n";
  {
    TablePrinter t({"percentile", "Google", "HedgeFund", "Mustang"});
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      t.AddRow({TablePrinter::Fmt(q * 100, 0) + "%",
                CdfRow(analyses[kinds[0]].runtimes, q), CdfRow(analyses[kinds[1]].runtimes, q),
                CdfRow(analyses[kinds[2]].runtimes, q)});
    }
    t.Print(std::cout);
  }

  const auto print_cov_table = [&](const char* title,
                                   std::vector<double> EnvAnalysis::*member) {
    std::cout << "\n==== " << title << " ====\n";
    std::cout << "Paper: substantial group fractions above CoV=1; "
                 "HedgeFund/Mustang > Google\n";
    TablePrinter t({"stat", "Google", "HedgeFund", "Mustang"});
    for (double q : {0.25, 0.5, 0.75, 0.9}) {
      t.AddRow({"CoV p" + TablePrinter::Fmt(q * 100, 0),
                CdfRow(analyses[kinds[0]].*member, q), CdfRow(analyses[kinds[1]].*member, q),
                CdfRow(analyses[kinds[2]].*member, q)});
    }
    t.AddRow({"% groups CoV>1", TablePrinter::Fmt(FractionAbove(analyses[kinds[0]].*member, 1.0), 1),
              TablePrinter::Fmt(FractionAbove(analyses[kinds[1]].*member, 1.0), 1),
              TablePrinter::Fmt(FractionAbove(analyses[kinds[2]].*member, 1.0), 1)});
    t.Print(std::cout);
  };
  print_cov_table("Fig. 2(b): CoV within user groups", &EnvAnalysis::user_covs);
  print_cov_table("Fig. 2(c): CoV within resource-request groups",
                  &EnvAnalysis::resource_covs);

  std::cout << "\n==== Fig. 2(d): estimate-error histogram (% of jobs per bucket) ====\n";
  std::cout << "Paper: mass near 0%; tails on both sides; >=2x mis-estimates: "
               "Google ~8%, HedgeFund/Mustang ~23%\n";
  {
    TablePrinter t({"error bucket", "Google", "HedgeFund", "Mustang"});
    std::map<EnvironmentKind, EstimateErrorHistogram> hists;
    for (EnvironmentKind kind : kinds) {
      hists[kind] =
          BuildEstimateErrorHistogram(analyses[kind].estimates, analyses[kind].actuals);
    }
    const EstimateErrorHistogram& ref = hists[kinds[0]];
    for (size_t b = 0; b < ref.centers.size(); ++b) {
      const std::string label = b + 1 == ref.centers.size()
                                    ? "tail(>95%)"
                                    : TablePrinter::Fmt(ref.centers[b], 0) + "%";
      t.AddRow({label, TablePrinter::Fmt(hists[kinds[0]].fractions[b] * 100, 1),
                TablePrinter::Fmt(hists[kinds[1]].fractions[b] * 100, 1),
                TablePrinter::Fmt(hists[kinds[2]].fractions[b] * 100, 1)});
    }
    t.Print(std::cout);

    // The §2.1 headline number: fraction of jobs mis-estimated by 2x or more.
    TablePrinter h({"environment", "% jobs off by >=2x"});
    for (EnvironmentKind kind : kinds) {
      int off = 0;
      const EnvAnalysis& a = analyses[kind];
      for (size_t i = 0; i < a.estimates.size(); ++i) {
        const double ratio = a.estimates[i] / a.actuals[i];
        if (ratio >= 2.0 || ratio <= 0.5) {
          ++off;
        }
      }
      h.AddRow({EnvironmentName(kind),
                TablePrinter::Fmt(100.0 * off / std::max<size_t>(a.estimates.size(), 1), 1)});
    }
    std::cout << "\n";
    h.Print(std::cout);
  }
  return 0;
}
