// Predictor and histogram micro-benchmarks (google-benchmark): streaming
// histogram ingest, distribution queries used in every MILP formulation, and
// end-to-end 3σPredict record/predict throughput.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/histogram/empirical_distribution.h"
#include "src/histogram/stream_histogram.h"
#include "src/predict/predictor.h"

namespace threesigma {
namespace {

void BM_StreamHistogramUpdate(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 4096; ++i) {
    samples.push_back(rng.LogNormal(4.0, 1.5));
  }
  StreamHistogram hist(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    hist.Update(samples[i++ & 4095]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamHistogramUpdate)->Arg(20)->Arg(80);

void BM_HistogramQuantile(benchmark::State& state) {
  Rng rng(2);
  StreamHistogram hist(80);
  for (int i = 0; i < 100000; ++i) {
    hist.Update(rng.LogNormal(4.0, 1.5));
  }
  double q = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.Quantile(q));
    q += 0.013;
    if (q > 0.99) {
      q = 0.01;
    }
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_ExpectedUtilityEvaluation(benchmark::State& state) {
  // The Eq. 1 inner loop exactly as the scheduler runs it per option.
  Rng rng(3);
  StreamHistogram hist(80);
  for (int i = 0; i < 10000; ++i) {
    hist.Update(rng.LogNormal(5.0, 1.0));
  }
  const auto dist = EmpiricalDistribution::FromHistogram(hist);
  const double deadline = 600.0;
  double start = 0.0;
  for (auto _ : state) {
    const double eu =
        dist.ExpectedValue([&](double t) { return start + t <= deadline ? 1.0 : 0.0; });
    benchmark::DoNotOptimize(eu);
    start += 10.0;
    if (start > 1200.0) {
      start = 0.0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpectedUtilityEvaluation);

void BM_ConditionalUpdate(benchmark::State& state) {
  // The Eq. 2 renormalization run for every running job every cycle.
  Rng rng(4);
  StreamHistogram hist(80);
  for (int i = 0; i < 10000; ++i) {
    hist.Update(rng.LogNormal(5.0, 1.0));
  }
  const auto dist = EmpiricalDistribution::FromHistogram(hist);
  double elapsed = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.ConditionalGivenExceeds(elapsed));
    elapsed = elapsed > 400.0 ? 1.0 : elapsed * 1.3;
  }
}
BENCHMARK(BM_ConditionalUpdate);

void BM_PredictorRecord(benchmark::State& state) {
  Rng rng(5);
  ThreeSigmaPredictor predictor;
  std::vector<JobFeatures> features;
  std::vector<double> runtimes;
  for (int i = 0; i < 512; ++i) {
    features.push_back({"user=u" + std::to_string(i % 50),
                        "jobname=j" + std::to_string(i % 120),
                        "user+jobname=u" + std::to_string(i % 50) + "|j" +
                            std::to_string(i % 120),
                        "tasks=" + std::to_string(1 << (i % 6))});
    runtimes.push_back(rng.LogNormal(4.0, 1.0));
  }
  size_t i = 0;
  for (auto _ : state) {
    predictor.RecordCompletion(features[i & 511], runtimes[i & 511]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorRecord);

void BM_PredictorPredict(benchmark::State& state) {
  // §6.5: prediction latency at job submission must be negligible (the paper
  // measured max 14 ms on their testbed).
  Rng rng(6);
  ThreeSigmaPredictor predictor;
  std::vector<JobFeatures> features;
  for (int i = 0; i < 512; ++i) {
    features.push_back({"user=u" + std::to_string(i % 50),
                        "jobname=j" + std::to_string(i % 120),
                        "user+jobname=u" + std::to_string(i % 50) + "|j" +
                            std::to_string(i % 120),
                        "tasks=" + std::to_string(1 << (i % 6))});
  }
  for (int i = 0; i < 20000; ++i) {
    predictor.RecordCompletion(features[static_cast<size_t>(rng.UniformInt(0, 511))],
                               rng.LogNormal(4.0, 1.0));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.Predict(features[i & 511], 0.0));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorPredict);

}  // namespace
}  // namespace threesigma

BENCHMARK_MAIN();
