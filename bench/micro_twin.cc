// Digital-twin micro-benchmarks: snapshot-fork latency, speculative
// simulation throughput, and full what-if sweep cost (fork fan-out +
// scenario-index-order report merge).
//
// Reported counters:
//   snapshot_bytes      — live snapshot size each fork restores from
//   cycles_per_second   — speculative scheduling cycles per wall second
//   scenarios           — scenarios per sweep (incl. the implicit baseline)
//
// CI uploads the JSON as BENCH_twin.json to track the trajectory across
// commits (wall-clock on shared runners is noisy; the size counters are
// deterministic).

#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/core/experiment.h"
#include "src/twin/scenario.h"
#include "src/twin/twin.h"

namespace threesigma {
namespace {

// A mid-run 3Sigma system: trained predictor, live jobs, warm scheduler —
// the state a serve daemon forks when a WhatIf RPC arrives.
struct Fixture {
  ExperimentConfig config;
  GeneratedWorkload workload;
  SystemInstance instance;
  DistributionScheduler* sched = nullptr;
  std::unique_ptr<Simulator> sim;
  std::string buffer;

  Fixture() {
    config.cluster = ClusterConfig::Uniform(4, 16);
    config.workload.duration = Minutes(20.0);
    config.workload.load = 1.3;
    config.workload.model_sample_jobs = 800;
    config.workload.pretrain_jobs = 2000;
    config.workload.seed = 7;
    config.sim.cycle_period = 10.0;
    config.sim.seed = 7;
    config.sched.cycle_period = config.sim.cycle_period;
    config.sched.solver_time_limit_seconds = 0.0;
    workload = GenerateWorkload(config.cluster, config.workload);
    instance = MakeSystem(SystemKind::kThreeSigma, config.cluster, config.sched);
    for (const JobSpec& job : workload.pretrain) {
      instance.predictor->RecordCompletion(job.features, job.true_runtime);
    }
    sched = dynamic_cast<DistributionScheduler*>(instance.scheduler.get());
    sim = std::make_unique<Simulator>(config.cluster, instance.scheduler.get(), workload.jobs,
                                      config.sim);
    for (int i = 0; i < 30 && sim->Step(); ++i) {
    }
    buffer = sim->SaveStateToBuffer();
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// Fork construction alone: borrowed-reader restore of the full live state
// into an isolated clone. This is the fixed cost every scenario pays.
void BM_TwinFork(benchmark::State& state) {
  Fixture& f = GetFixture();
  const Scenario baseline;  // No overrides: pure restore.
  for (auto _ : state) {
    TwinFork fork(f.buffer, f.config.cluster, SystemKind::kThreeSigma, f.sched->config(),
                  baseline);
    benchmark::DoNotOptimize(fork.ok());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(f.buffer.size());
}
BENCHMARK(BM_TwinFork)->Unit(benchmark::kMillisecond);

// Fork + H speculative cycles: the marginal cost of looking further ahead.
void BM_TwinSpeculate(benchmark::State& state) {
  Fixture& f = GetFixture();
  const int horizon = static_cast<int>(state.range(0));
  const Scenario baseline;
  int64_t cycles = 0;
  for (auto _ : state) {
    TwinFork fork(f.buffer, f.config.cluster, SystemKind::kThreeSigma, f.sched->config(),
                  baseline);
    const ScenarioOutcome outcome = fork.Speculate(horizon);
    cycles += outcome.speculative_cycles;
    benchmark::DoNotOptimize(outcome.projected_utility);
  }
  state.counters["cycles_per_second"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TwinSpeculate)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

// The full RPC-shaped sweep: K scenarios fanned out on the solver pool,
// outcomes merged in scenario-index order, advisor verdict, text report.
void BM_TwinWhatIfSweep(benchmark::State& state) {
  Fixture& f = GetFixture();
  TwinOptions options;
  options.horizon_cycles = 25;
  WhatIfEngine engine(f.config.cluster, f.sched, options);
  const std::vector<Scenario> scenarios = DefaultScenarios();
  size_t report_bytes = 0;
  for (auto _ : state) {
    const WhatIfReport report = engine.Run(*f.sim, scenarios, options.horizon_cycles);
    report_bytes = report.ToText().size();
    benchmark::DoNotOptimize(report.best_index);
  }
  state.counters["scenarios"] = static_cast<double>(scenarios.size() + 1);
  state.counters["report_bytes"] = static_cast<double>(report_bytes);
}
BENCHMARK(BM_TwinWhatIfSweep)->Unit(benchmark::kMillisecond);

// Report merge + render in isolation: K pre-computed outcomes assembled into
// the deterministic text payload the WhatIf RPC returns.
void BM_TwinReportMerge(benchmark::State& state) {
  Fixture& f = GetFixture();
  TwinOptions options;
  options.horizon_cycles = 25;
  WhatIfEngine engine(f.config.cluster, f.sched, options);
  const WhatIfReport report = engine.Run(*f.sim, DefaultScenarios(), options.horizon_cycles);
  for (auto _ : state) {
    const std::string text = report.ToText();
    benchmark::DoNotOptimize(text);
  }
  state.counters["report_bytes"] = static_cast<double>(report.ToText().size());
}
BENCHMARK(BM_TwinReportMerge)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace threesigma

BENCHMARK_MAIN();
