// Fig. 9 — robustness to distribution mis-estimation: the scheduler is fed
// synthetic distributions ~N(µ = runtime·(1 + shift), σ = runtime·CoV),
// swept over artificial shift and CoV (CoV=0 is the point-estimate curve).
//
// Paper-reported shape:
//   - every distribution curve beats the point curve at every shift,
//   - near shift 0, tighter distributions (CoV 10%) win,
//   - at large |shift|, wider distributions (CoV 50%) hedge better,
//   - the point curve collapses fastest as shift grows.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  const std::vector<double> shifts = {-0.5, -0.2, 0.0, 0.2, 0.5, 1.0};
  const std::vector<double> covs = {0.0, 0.1, 0.2, 0.5};  // 0.0 == point.

  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.5);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  PrintHeaderBlock(
      "Fig. 9: artificial distribution shift x width",
      "Paper: distributions always beat points; narrow wins near 0 shift, wide wins far out",
      workload);

  TablePrinter miss({"shift %", "point", "CoV=10%", "CoV=20%", "CoV=50%"});
  TablePrinter slo_gp({"shift %", "point", "CoV=10%", "CoV=20%", "CoV=50%"});
  for (double shift : shifts) {
    std::vector<std::string> miss_row = {TablePrinter::Fmt(shift * 100, 0)};
    std::vector<std::string> gp_row = {TablePrinter::Fmt(shift * 100, 0)};
    for (double cov : covs) {
      SystemInstance instance = MakeSyntheticSystem(
          shift, cov, config.cluster, config.sched,
          BenchSeed() + static_cast<uint64_t>((shift + 2.0) * 1000 + cov * 100));
      const RunMetrics m = RunSystemInstance(instance, "synthetic", config, workload,
                                             /*pretrain=*/false);
      miss_row.push_back(TablePrinter::Fmt(m.slo_miss_rate_percent, 1));
      gp_row.push_back(TablePrinter::Fmt(m.slo_goodput_machine_hours, 0));
    }
    miss.AddRow(miss_row);
    slo_gp.AddRow(gp_row);
  }
  std::cout << "(a) SLO miss %:\n";
  miss.Print(std::cout);
  std::cout << "\n(b) SLO goodput (M-hr):\n";
  slo_gp.Print(std::cout);
  return 0;
}
