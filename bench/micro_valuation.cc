// Valuation-engine micro-benchmarks (google-benchmark): closed-form Eq. 1
// kernels vs the generic std::function per-atom loop, table build/cache-hit
// costs, and the end-to-end per-job valuation (every (group, start-slot)
// option of one job) both ways.
//
// The distribution is fig06-shaped: an 80-bin streaming histogram over
// LogNormal(5.0, 1.0) runtimes, the same shape BM_ExpectedUtilityEvaluation
// in micro_predict.cc uses. After the registered benchmarks run, main()
// measures and prints the single-threaded per-job valuation speedup
// (generic / engine) directly, so CI logs carry the headline number without
// JSON post-processing.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "src/cluster/utility.h"
#include "src/common/rng.h"
#include "src/histogram/empirical_distribution.h"
#include "src/histogram/stream_histogram.h"
#include "src/sched/valuation.h"

namespace threesigma {
namespace {

// One job's valuation problem, shaped like the scheduler's hot loop: 4
// placement groups at distinct runtime multipliers, 20 start slots.
constexpr int kGroups = 4;
constexpr int kSlots = 20;
constexpr double kDelta = 30.0;
constexpr double kGroupMult[kGroups] = {1.0, 1.25, 1.5, 2.0};

EmpiricalDistribution Fig06Distribution() {
  Rng rng(3);
  StreamHistogram hist(80);
  for (int i = 0; i < 10000; ++i) {
    hist.Update(rng.LogNormal(5.0, 1.0));
  }
  return EmpiricalDistribution::FromHistogram(hist);
}

UtilityFunction UtilityFor(int kind) {
  switch (kind) {
    case 0:
      return UtilityFunction::SloStep(10.0, 600.0);
    case 1:
      return UtilityFunction::SloStepWithDecay(10.0, 600.0, 300.0);
    default:
      return UtilityFunction::BestEffortLinear(10.0, 0.0, 3600.0);
  }
}

// The generic path exactly as the scheduler's engine-off branch runs it:
// Scaled() materialization per group, Survival per slot offset, and the
// std::function-free template ExpectedValue per start slot.
double ValueJobGeneric(const EmpiricalDistribution& dist, const UtilityFunction& u) {
  double acc = 0.0;
  for (int g = 0; g < kGroups; ++g) {
    const double mult = kGroupMult[g];
    const EmpiricalDistribution scaled = mult == 1.0 ? dist : dist.Scaled(mult);
    for (int d = 0; d < kSlots; ++d) {
      acc += scaled.Survival(d * kDelta);
    }
    for (int s = 0; s < kSlots; ++s) {
      const double start = s * kDelta;
      acc += scaled.ExpectedValue(
          [&](double t) { return u.ValueAtCompletion(start + t); });
    }
  }
  return acc;
}

// The engine path with warm tables (the steady-state cycle: every lookup a
// cache hit, kernels only).
double ValueJobEngine(const ValuationEngine& engine, const UtilityFunction& u) {
  double acc = 0.0;
  for (int g = 0; g < kGroups; ++g) {
    const ValuationTables* tables = engine.Find(1, kGroupMult[g]);
    for (int d = 0; d < kSlots; ++d) {
      acc += engine.Survival(*tables, d * kDelta);
    }
    for (int s = 0; s < kSlots; ++s) {
      acc += engine.ExpectedUtility(*tables, u, s * kDelta, nullptr);
    }
  }
  return acc;
}

ValuationEngine WarmEngine(const EmpiricalDistribution& dist, const UtilityFunction& u) {
  ValuationEngine engine(ValuationEngine::Config{/*cache=*/true, /*crosscheck=*/false});
  for (int g = 0; g < kGroups; ++g) {
    engine.Tables(1, kGroupMult[g], dist, u, nullptr);
  }
  return engine;
}

void BM_ExpectedUtilityGeneric(benchmark::State& state) {
  const EmpiricalDistribution dist = Fig06Distribution();
  const UtilityFunction u = UtilityFor(static_cast<int>(state.range(0)));
  double start = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.ExpectedValue(
        [&](double t) { return u.ValueAtCompletion(start + t); }));
    start += 10.0;
    if (start > 1200.0) {
      start = 0.0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpectedUtilityGeneric)->Arg(0)->Arg(1)->Arg(2);

void BM_ExpectedUtilityKernel(benchmark::State& state) {
  const EmpiricalDistribution dist = Fig06Distribution();
  const UtilityFunction u = UtilityFor(static_cast<int>(state.range(0)));
  ValuationEngine engine = WarmEngine(dist, u);
  const ValuationTables* tables = engine.Find(1, 1.0);
  double start = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ExpectedUtility(*tables, u, start, nullptr));
    start += 10.0;
    if (start > 1200.0) {
      start = 0.0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpectedUtilityKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_SurvivalGeneric(benchmark::State& state) {
  const EmpiricalDistribution dist = Fig06Distribution();
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Survival(t));
    t += 17.0;
    if (t > 2000.0) {
      t = 0.0;
    }
  }
}
BENCHMARK(BM_SurvivalGeneric);

void BM_SurvivalTable(benchmark::State& state) {
  const EmpiricalDistribution dist = Fig06Distribution();
  const UtilityFunction u = UtilityFor(0);
  ValuationEngine engine = WarmEngine(dist, u);
  const ValuationTables* tables = engine.Find(1, 1.0);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tables->Survival(t));
    t += 17.0;
    if (t > 2000.0) {
      t = 0.0;
    }
  }
}
BENCHMARK(BM_SurvivalTable);

void BM_TablesBuildMiss(benchmark::State& state) {
  // Cold cost per (job, scale): one Scaled() call + prefix sums.
  const EmpiricalDistribution dist = Fig06Distribution();
  const UtilityFunction u = UtilityFor(0);
  for (auto _ : state) {
    ValuationEngine engine(ValuationEngine::Config{true, false});
    benchmark::DoNotOptimize(engine.Tables(1, 1.5, dist, u, nullptr));
  }
}
BENCHMARK(BM_TablesBuildMiss);

void BM_TablesCacheHit(benchmark::State& state) {
  const EmpiricalDistribution dist = Fig06Distribution();
  const UtilityFunction u = UtilityFor(0);
  ValuationEngine engine = WarmEngine(dist, u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Tables(1, 1.5, dist, u, nullptr));
  }
}
BENCHMARK(BM_TablesCacheHit);

void BM_PerJobValuationGeneric(benchmark::State& state) {
  const EmpiricalDistribution dist = Fig06Distribution();
  const UtilityFunction u = UtilityFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueJobGeneric(dist, u));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerJobValuationGeneric)->Arg(0)->Arg(1)->Arg(2);

void BM_PerJobValuationEngine(benchmark::State& state) {
  const EmpiricalDistribution dist = Fig06Distribution();
  const UtilityFunction u = UtilityFor(static_cast<int>(state.range(0)));
  ValuationEngine engine = WarmEngine(dist, u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueJobEngine(engine, u));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerJobValuationEngine)->Arg(0)->Arg(1)->Arg(2);

// Direct single-threaded speedup measurement for the CI log: jobs/second
// valuing one job both ways, per utility kind.
void PrintSpeedupSummary() {
  const EmpiricalDistribution dist = Fig06Distribution();
  const char* names[3] = {"step", "step_decay", "linear"};
  std::printf("\nper-job valuation throughput (single thread, fig06 shape)\n");
  std::printf("%-12s %14s %14s %9s\n", "utility", "generic(job/s)", "engine(job/s)", "speedup");
  for (int kind = 0; kind < 3; ++kind) {
    const UtilityFunction u = UtilityFor(kind);
    ValuationEngine engine = WarmEngine(dist, u);
    const auto rate = [](const auto& fn) {
      using Clock = std::chrono::steady_clock;
      // Warm up, then time enough iterations for a stable read.
      double sink = 0.0;
      for (int i = 0; i < 20; ++i) {
        sink += fn();
      }
      int iters = 200;
      Clock::duration elapsed{};
      for (;;) {
        const auto begin = Clock::now();
        for (int i = 0; i < iters; ++i) {
          sink += fn();
        }
        elapsed = Clock::now() - begin;
        if (elapsed >= std::chrono::milliseconds(100)) {
          break;
        }
        iters *= 4;
      }
      benchmark::DoNotOptimize(sink);
      return static_cast<double>(iters) /
             std::chrono::duration<double>(elapsed).count();
    };
    const double generic = rate([&] { return ValueJobGeneric(dist, u); });
    const double engine_rate = rate([&] { return ValueJobEngine(engine, u); });
    std::printf("%-12s %14.0f %14.0f %8.1fx\n", names[kind], generic, engine_rate,
                engine_rate / generic);
  }
}

}  // namespace
}  // namespace threesigma

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  threesigma::PrintSpeedupSummary();
  return 0;
}
