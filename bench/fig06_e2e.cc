// Fig. 6 + Table 2 — end-to-end comparison on the "real" cluster (our
// high-fidelity simulation mode standing in for RC256) and the validation of
// the idealized simulator (SC256) against it.
//
// Paper-reported (Fig. 6, RC256, 2h E2E): SLO miss 3Sigma 4.4% ~ PointPerfEst
// 3.3% << PointRealEst 18%, Prio 12%; goodput 3Sigma ~ PerfEst > RealEst >
// Prio-BE; BE latency similar across systems. Table 2 reports small absolute
// real-vs-sim deltas.

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/1.0);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  PrintHeaderBlock("Fig. 6: end-to-end comparison (high-fidelity 'RC256' mode)",
                   "Paper: miss% 4.4/3.3/18/12; 3Sigma~PerfEst on goodput; BE lat similar",
                   workload);

  const std::vector<SystemKind> systems = {SystemKind::kThreeSigma, SystemKind::kPointPerfEst,
                                           SystemKind::kPointRealEst, SystemKind::kPrio};

  ExperimentConfig real = config;
  real.sim.fidelity = SimFidelity::kHighFidelity;
  std::vector<RunMetrics> real_results = RunSystems(systems, real, workload);
  TablePrinter real_table(MetricsHeaders());
  for (const RunMetrics& m : real_results) {
    real_table.AddRow(MetricsRow(m));
  }
  real_table.Print(std::cout);

  std::cout << "\n==== Fig. 6 (idealized 'SC256' simulation of the identical workload) ====\n";
  ExperimentConfig sim = config;
  sim.sim.fidelity = SimFidelity::kIdeal;
  std::vector<RunMetrics> sim_results = RunSystems(systems, sim, workload);
  TablePrinter sim_table(MetricsHeaders());
  for (const RunMetrics& m : sim_results) {
    sim_table.AddRow(MetricsRow(m));
  }
  sim_table.Print(std::cout);

  std::cout << "\n==== Table 2: |real - sim| per system ====\n";
  std::cout << "Paper: deltas of 0.3-2.0 miss points, ~20-27 M-hr, 2-12 s BE latency\n";
  TablePrinter delta({"system", "d SLO miss (pts)", "d goodput (M-hr)", "d BE lat (s)"});
  for (size_t i = 0; i < systems.size(); ++i) {
    delta.AddRow(
        {real_results[i].system,
         TablePrinter::Fmt(
             std::fabs(real_results[i].slo_miss_rate_percent - sim_results[i].slo_miss_rate_percent), 2),
         TablePrinter::Fmt(
             std::fabs(real_results[i].goodput_machine_hours - sim_results[i].goodput_machine_hours), 2),
         TablePrinter::Fmt(
             std::fabs(real_results[i].mean_be_latency_seconds - sim_results[i].mean_be_latency_seconds), 1)});
  }
  delta.Print(std::cout);
  return 0;
}
