// Ablation: plan-ahead window and start-slot granularity (§4.3.3/§4.3.6).
//
// The plan-ahead window bounds the MILP's time dimension; slots trade
// deferral precision against solver cost. Expected: too-short windows lose
// deferral opportunities (more misses); more slots help until solver budget
// dominates, with cycle time growing in the slot count.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  struct Point {
    double planahead;
    int slots;
  };
  const std::vector<Point> sweep = {{300.0, 3}, {600.0, 4}, {1200.0, 6}, {2400.0, 8},
                                    {2400.0, 12}};

  ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.4);
  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  PrintHeaderBlock("Ablation: plan-ahead window x slot granularity (3Sigma)",
                   "Expectation: short windows hurt deferral; slots cost solver time",
                   workload);

  TablePrinter table({"planahead (s)", "slots", "SLO miss %", "BE lat (s)",
                      "mean cycle (ms)", "max vars"});
  for (const Point& p : sweep) {
    ExperimentConfig c = config;
    c.sched.planahead = p.planahead;
    c.sched.num_start_slots = p.slots;
    const RunMetrics m = RunSystem(SystemKind::kThreeSigma, c, workload);
    table.AddRow({TablePrinter::Fmt(p.planahead, 0), std::to_string(p.slots),
                  TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  TablePrinter::Fmt(m.mean_be_latency_seconds, 0),
                  TablePrinter::Fmt(m.mean_cycle_seconds * 1000, 1),
                  std::to_string(m.max_milp_variables)});
  }
  table.Print(std::cout);
  return 0;
}
