// Solver micro-benchmarks (google-benchmark): simplex scaling with problem
// size, branch-and-bound on scheduler-shaped binary programs, and the
// §4.3.6 warm-start ablation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/solver/lp_model.h"
#include "src/solver/milp.h"
#include "src/solver/sharded_milp.h"
#include "src/solver/simplex.h"

namespace threesigma {
namespace {

// A scheduler-shaped model: `jobs` jobs x `options_per_job` binary options,
// at-most-one demand rows, `capacity_rows` shared <= rows.
LpModel SchedulerShapedModel(int jobs, int options_per_job, int capacity_rows, Rng& rng,
                             std::vector<int>* int_vars) {
  LpModel model;
  std::vector<std::vector<LpTerm>> capacity(capacity_rows);
  for (int j = 0; j < jobs; ++j) {
    std::vector<LpTerm> demand;
    for (int o = 0; o < options_per_job; ++o) {
      const int var = model.AddVariable(0.0, 1.0, rng.Uniform(0.1, 10.0));
      int_vars->push_back(var);
      demand.push_back({var, 1.0});
      for (int c = 0; c < capacity_rows; ++c) {
        if (rng.Bernoulli(0.4)) {
          capacity[c].push_back({var, rng.Uniform(0.5, 4.0)});
        }
      }
    }
    model.AddRow(RowSense::kLessEqual, 1.0, std::move(demand));
  }
  for (int c = 0; c < capacity_rows; ++c) {
    model.AddRow(RowSense::kLessEqual, rng.Uniform(4.0, 16.0), std::move(capacity[c]));
  }
  return model;
}

void BM_SimplexSchedulerShaped(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  Rng rng(42);
  std::vector<int> int_vars;
  const LpModel model = SchedulerShapedModel(jobs, 12, 24, rng, &int_vars);
  for (auto _ : state) {
    const LpSolution sol = SolveLp(model);
    benchmark::DoNotOptimize(sol.objective);
  }
  state.counters["vars"] = model.num_variables();
  state.counters["rows"] = model.num_rows();
}
BENCHMARK(BM_SimplexSchedulerShaped)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MilpSchedulerShaped(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  Rng rng(42);
  std::vector<int> int_vars;
  const LpModel model = SchedulerShapedModel(jobs, 12, 24, rng, &int_vars);
  MilpOptions options;
  options.max_nodes = 6;
  options.time_limit_seconds = 0.1;
  for (auto _ : state) {
    MilpSolver solver(model, int_vars);
    const MilpSolution sol = solver.Solve(options);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_MilpSchedulerShaped)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Thread-count sweep over the wave-parallel branch-and-bound (deep node
// budget so the search is LP-bound). The solution is identical at every
// thread count (deterministic waves); only the wall clock should move.
// Speedup is only visible on multi-core hardware.
void BM_MilpParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(42);
  std::vector<int> int_vars;
  const LpModel model = SchedulerShapedModel(64, 12, 24, rng, &int_vars);
  ThreadPool pool(threads);
  MilpOptions options;
  options.max_nodes = 200;
  options.pool = &pool;
  int64_t nodes = 0;
  for (auto _ : state) {
    MilpSolver solver(model, int_vars);
    const MilpSolution sol = solver.Solve(options);
    nodes += sol.nodes_explored;
    benchmark::DoNotOptimize(sol.objective);
  }
  state.counters["nodes/s"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_MilpParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Warm-start ablation: solving with the previous solution as the incumbent
// vs from scratch (the paper's primary scalability optimization).
void BM_MilpWarmStart(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  Rng rng(42);
  std::vector<int> int_vars;
  const LpModel model = SchedulerShapedModel(32, 12, 24, rng, &int_vars);
  MilpSolver solver(model, int_vars);
  MilpOptions cold;
  cold.max_nodes = 40;
  const MilpSolution reference = solver.Solve(cold);
  MilpOptions options;
  options.max_nodes = 40;
  if (warm) {
    options.warm_start = reference.values;
  }
  for (auto _ : state) {
    MilpSolver s(model, int_vars);
    const MilpSolution sol = s.Solve(options);
    benchmark::DoNotOptimize(sol.objective);
  }
  state.SetLabel(warm ? "warm-start" : "cold");
}
BENCHMARK(BM_MilpWarmStart)->Arg(0)->Arg(1);

// Basis warm-starting ablation on the branch-and-bound node stream: every
// child re-optimizes from its parent's basis with a handful of dual pivots
// instead of a cold Phase-1/Phase-2 solve. Arg(1) = warm, Arg(0) = cold;
// THREESIGMA_SOLVER_WARMSTART=0 forces the cold path for A/B runs without
// recompiling. Reported counters:
//   pivots/s       — total simplex pivots (phase 1 + phase 2 + dual) per sec
//   lp_iters       — mean total pivots per node-stream replay
//   ftran, btran   — sparse eta-file solves per replay
//   refactor       — basis reinversions per replay
//   dual/warmnode  — mean dual pivots per warm-started node
void BM_BnbNodeStreamBasis(benchmark::State& state) {
  const bool warm = state.range(0) != 0 && SolverWarmstartEnv();
  Rng rng(515);
  std::vector<int> int_vars;
  const LpModel model = SchedulerShapedModel(24, 3, 8, rng, &int_vars);
  MilpOptions options;
  options.basis_warmstart = warm;
  options.max_nodes = 200;
  int64_t pivots = 0, ftran = 0, btran = 0, refactor = 0;
  int64_t dual = 0, warm_nodes = 0, replays = 0;
  for (auto _ : state) {
    MilpSolver solver(model, int_vars);
    const MilpSolution sol = solver.Solve(options);
    pivots += sol.lp_iterations;
    ftran += sol.ftran_count;
    btran += sol.btran_count;
    refactor += sol.refactorizations;
    dual += sol.lp_dual_iterations;
    warm_nodes += sol.warm_started_nodes;
    ++replays;
    benchmark::DoNotOptimize(sol.objective);
  }
  const double n = static_cast<double>(replays);
  state.counters["pivots/s"] =
      benchmark::Counter(static_cast<double>(pivots), benchmark::Counter::kIsRate);
  state.counters["lp_iters"] = static_cast<double>(pivots) / n;
  state.counters["ftran"] = static_cast<double>(ftran) / n;
  state.counters["btran"] = static_cast<double>(btran) / n;
  state.counters["refactor"] = static_cast<double>(refactor) / n;
  state.counters["dual/warmnode"] =
      warm_nodes > 0 ? static_cast<double>(dual) / static_cast<double>(warm_nodes) : 0.0;
  state.SetLabel(warm ? "warm-basis" : "cold-basis");
}
BENCHMARK(BM_BnbNodeStreamBasis)->Arg(0)->Arg(1);

// The decomposable regime of the per-cycle MILP: `components` independent
// scheduler-shaped blocks (jobs whose eligible groups partition into disjoint
// sets share no capacity rows). Each block has its own jobs, demand rows, and
// capacity rows, so the constraint graph has exactly `components` connected
// components.
LpModel MultiComponentModel(int components, int jobs_per_component, int options_per_job,
                            int capacity_rows, Rng& rng, std::vector<int>* int_vars) {
  LpModel model;
  for (int k = 0; k < components; ++k) {
    std::vector<std::vector<LpTerm>> capacity(static_cast<size_t>(capacity_rows));
    for (int j = 0; j < jobs_per_component; ++j) {
      std::vector<LpTerm> demand;
      for (int o = 0; o < options_per_job; ++o) {
        const int var = model.AddVariable(0.0, 1.0, rng.Uniform(0.1, 10.0));
        int_vars->push_back(var);
        demand.push_back({var, 1.0});
        for (int c = 0; c < capacity_rows; ++c) {
          if (rng.Bernoulli(0.4)) {
            capacity[static_cast<size_t>(c)].push_back({var, rng.Uniform(0.5, 4.0)});
          }
        }
      }
      model.AddRow(RowSense::kLessEqual, 1.0, std::move(demand));
    }
    for (int c = 0; c < capacity_rows; ++c) {
      model.AddRow(RowSense::kLessEqual, rng.Uniform(2.0, 8.0),
                   std::move(capacity[static_cast<size_t>(c)]));
    }
  }
  return model;
}

// Shard decomposition ablation: monolithic vs sharded solve of a K-component
// program, both run to optimality under a non-binding node cap so the node
// counts are the honest work metric (B&B trees on separable programs multiply
// across blocks; decomposition solves each block's tree once). The "nodes"
// counter is the headline: sharded total nodes should drop superlinearly as
// `components` grows, while the answers stay bitwise identical.
void BM_MilpShardDecomposition(benchmark::State& state) {
  const int components = static_cast<int>(state.range(0));
  const bool sharded = state.range(1) != 0;
  Rng rng(99);
  std::vector<int> int_vars;
  const LpModel model = MultiComponentModel(components, 6, 3, 4, rng, &int_vars);
  ThreadPool pool(4);
  // Cap far above the sharded need; the monolithic tree may hit it at high
  // component counts, making the reported reduction a lower bound.
  constexpr int64_t kNodeCap = 50000;
  int64_t nodes = 0;
  int64_t replays = 0;
  double objective = 0.0;
  if (sharded) {
    ShardedMilpOptions options;
    options.base.max_nodes = kNodeCap;
    options.base.pool = &pool;
    for (auto _ : state) {
      const ShardedMilpSolution sol = SolveShardedMilp(model, int_vars, options);
      nodes += sol.merged.nodes_explored;
      ++replays;
      objective = sol.merged.objective;
      benchmark::DoNotOptimize(sol.merged.objective);
    }
  } else {
    MilpOptions options;
    options.max_nodes = kNodeCap;
    options.pool = &pool;
    for (auto _ : state) {
      MilpSolver solver(model, int_vars);
      const MilpSolution sol = solver.Solve(options);
      nodes += sol.nodes_explored;
      ++replays;
      objective = sol.objective;
      benchmark::DoNotOptimize(sol.objective);
    }
  }
  state.counters["components"] = components;
  state.counters["nodes"] = static_cast<double>(nodes) / static_cast<double>(replays);
  state.counters["objective"] = objective;
  state.SetLabel(sharded ? "sharded" : "monolithic");
}
BENCHMARK(BM_MilpShardDecomposition)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_SimplexDense(benchmark::State& state) {
  // Dense random LP: stresses pricing and the basis inverse.
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  LpModel model;
  for (int i = 0; i < n; ++i) {
    model.AddVariable(0.0, 1.0, rng.Uniform(-1.0, 5.0));
  }
  for (int r = 0; r < n / 2; ++r) {
    std::vector<LpTerm> terms;
    for (int i = 0; i < n; ++i) {
      terms.push_back({i, rng.Uniform(0.0, 2.0)});
    }
    model.AddRow(RowSense::kLessEqual, rng.Uniform(1.0, n / 4.0), std::move(terms));
  }
  for (auto _ : state) {
    const LpSolution sol = SolveLp(model);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_SimplexDense)->Arg(16)->Arg(64)->Arg(128);

}  // namespace
}  // namespace threesigma

BENCHMARK_MAIN();
