// Fig. 8 — attribution of benefit: 3Sigma with individual techniques
// disabled, swept over constant deadline slack (DEADLINE-n workloads).
//
// Paper-reported shape (SLO miss vs slack):
//   - every system improves as slack grows,
//   - PointRealEst is worst; 3SigmaNoDist (point estimates + OE handling)
//     improves on it but stays high,
//   - 3SigmaNoOE (distributions alone) drops near PointPerfEst for most
//     slacks,
//   - 3SigmaNoAdapt helps at the tightest slacks but wastes BE goodput,
//   - full 3Sigma is best overall; all techniques are needed.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  const std::vector<SystemKind> systems = {
      SystemKind::kPointRealEst,    SystemKind::kThreeSigmaNoDist,
      SystemKind::kThreeSigmaNoOE,  SystemKind::kThreeSigmaNoAdapt,
      SystemKind::kThreeSigma,      SystemKind::kPointPerfEst};
  const std::vector<double> slacks = {20.0, 60.0, 100.0, 140.0, 180.0};

  std::cout << "==== Fig. 8: attribution of benefit vs deadline slack (DEADLINE-n) ====\n";
  std::cout << "Paper: all techniques needed; NoDist >> NoOE ~= PerfEst; NoAdapt burns BE "
               "goodput at high slack\n\n";

  TablePrinter miss({"slack %", "PointRealEst", "3SigNoDist", "3SigNoOE", "3SigNoAdapt",
                     "3Sigma", "PointPerfEst"});
  TablePrinter slo_gp(
      {"slack %", "PointRealEst", "3SigNoDist", "3SigNoOE", "3SigNoAdapt", "3Sigma",
       "PointPerfEst"});
  TablePrinter be_gp(
      {"slack %", "PointRealEst", "3SigNoDist", "3SigNoOE", "3SigNoAdapt", "3Sigma",
       "PointPerfEst"});
  for (double slack : slacks) {
    ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.5);
    config.workload.deadline_slacks = {slack};
    config.workload.seed = BenchSeed() + static_cast<uint64_t>(slack);
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
    std::vector<std::string> miss_row = {TablePrinter::Fmt(slack, 0)};
    std::vector<std::string> slo_row = {TablePrinter::Fmt(slack, 0)};
    std::vector<std::string> be_row = {TablePrinter::Fmt(slack, 0)};
    for (const RunMetrics& m : RunSystems(systems, config, workload)) {
      miss_row.push_back(TablePrinter::Fmt(m.slo_miss_rate_percent, 1));
      slo_row.push_back(TablePrinter::Fmt(m.slo_goodput_machine_hours, 0));
      be_row.push_back(TablePrinter::Fmt(m.be_goodput_machine_hours, 0));
    }
    miss.AddRow(miss_row);
    slo_gp.AddRow(slo_row);
    be_gp.AddRow(be_row);
  }
  std::cout << "(a) SLO miss %:\n";
  miss.Print(std::cout);
  std::cout << "\n(b) SLO goodput (M-hr):\n";
  slo_gp.Print(std::cout);
  std::cout << "\n(c) BE goodput (M-hr):\n";
  be_gp.Print(std::cout);
  return 0;
}
