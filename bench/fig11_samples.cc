// Fig. 11 — sensitivity to the number of observed samples per feature
// (E2E-SAMPLE-n workloads): the predictor's histories are built from only n
// pre-training samples per population.
//
// Paper-reported shape: 5 -> 25 samples improves both history-based systems
// substantially; by ~25 samples 3Sigma converges to PointPerfEst; 3Sigma
// beats PointRealEst at every sample count (it uses the whole distribution,
// not just the mean); PointPerfEst and Prio are flat by construction.

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  const std::vector<SystemKind> systems = {SystemKind::kThreeSigma, SystemKind::kPointPerfEst,
                                           SystemKind::kPointRealEst, SystemKind::kPrio};
  const std::vector<int> sample_counts = {5, 10, 25, 50};

  std::cout << "==== Fig. 11: sample-size sensitivity (E2E-SAMPLE-n) ====\n";
  std::cout << "Paper: big gains 5->25 samples; 3Sigma converges to PerfEst by ~25; "
               "PerfEst/Prio flat\n\n";

  TablePrinter miss({"samples", "3Sigma", "PointPerfEst", "PointRealEst", "Prio"});
  TablePrinter be_gp({"samples", "3Sigma", "PointPerfEst", "PointRealEst", "Prio"});
  TablePrinter be_lat({"samples", "3Sigma", "PointPerfEst", "PointRealEst", "Prio"});
  for (int n : sample_counts) {
    ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.5);
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
    std::vector<std::string> miss_row = {std::to_string(n)};
    std::vector<std::string> gp_row = {std::to_string(n)};
    std::vector<std::string> lat_row = {std::to_string(n)};
    for (SystemKind kind : systems) {
      RunMetrics m;
      if (kind == SystemKind::kThreeSigma || kind == SystemKind::kPointRealEst) {
        // History-based systems: freeze every population's history at n
        // samples (pre-training and online completions both count).
        SystemInstance instance =
            MakeSampleCappedSystem(kind, n, config.cluster, config.sched);
        m = RunSystemInstance(instance, SystemName(kind), config, workload);
      } else {
        m = RunSystem(kind, config, workload);
      }
      miss_row.push_back(TablePrinter::Fmt(m.slo_miss_rate_percent, 1));
      gp_row.push_back(TablePrinter::Fmt(m.be_goodput_machine_hours, 0));
      lat_row.push_back(TablePrinter::Fmt(m.mean_be_latency_seconds, 0));
    }
    miss.AddRow(miss_row);
    be_gp.AddRow(gp_row);
    be_lat.AddRow(lat_row);
  }
  std::cout << "(a) SLO miss %:\n";
  miss.Print(std::cout);
  std::cout << "\n(b) BE goodput (M-hr):\n";
  be_gp.Print(std::cout);
  std::cout << "\n(c) BE latency (s):\n";
  be_lat.Print(std::cout);
  return 0;
}
