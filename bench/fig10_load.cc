// Fig. 10 — sensitivity to cluster load (E2E-LOAD-l workloads).
//
// Paper-reported shape: SLO miss rises with load for every system, with
// 3Sigma tracking PointPerfEst closely and staying well below PointRealEst
// and Prio; as load grows, every system sacrifices BE goodput to protect SLO
// jobs, and the BE-goodput gap between PerfEst and 3Sigma widens (3Sigma
// hedges runtime uncertainty with extra room).

#include <iostream>

#include "bench/bench_util.h"

using namespace threesigma;

int main() {
  const std::vector<SystemKind> systems = {SystemKind::kThreeSigma, SystemKind::kPointPerfEst,
                                           SystemKind::kPointRealEst, SystemKind::kPrio};
  const std::vector<double> loads = {1.0, 1.2, 1.4, 1.6};

  std::cout << "==== Fig. 10: load sensitivity (E2E-LOAD-l) ====\n";
  std::cout << "Paper: miss rises with load; 3Sigma ~ PerfEst << RealEst; BE goodput "
               "falls as SLO jobs are prioritized\n\n";

  TablePrinter miss({"load", "3Sigma", "PointPerfEst", "PointRealEst", "Prio"});
  TablePrinter be_gp({"load", "3Sigma", "PointPerfEst", "PointRealEst", "Prio"});
  TablePrinter be_lat({"load", "3Sigma", "PointPerfEst", "PointRealEst", "Prio"});
  for (double load : loads) {
    ExperimentConfig config = MakeE2EConfig(/*base_hours=*/0.5, load);
    config.workload.seed = BenchSeed() + static_cast<uint64_t>(load * 10);
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
    std::vector<std::string> miss_row = {TablePrinter::Fmt(load, 1)};
    std::vector<std::string> gp_row = {TablePrinter::Fmt(load, 1)};
    std::vector<std::string> lat_row = {TablePrinter::Fmt(load, 1)};
    for (const RunMetrics& m : RunSystems(systems, config, workload)) {
      miss_row.push_back(TablePrinter::Fmt(m.slo_miss_rate_percent, 1));
      gp_row.push_back(TablePrinter::Fmt(m.be_goodput_machine_hours, 0));
      lat_row.push_back(TablePrinter::Fmt(m.mean_be_latency_seconds, 0));
    }
    miss.AddRow(miss_row);
    be_gp.AddRow(gp_row);
    be_lat.AddRow(lat_row);
  }
  std::cout << "(a) SLO miss %:\n";
  miss.Print(std::cout);
  std::cout << "\n(b) BE goodput (M-hr):\n";
  be_gp.Print(std::cout);
  std::cout << "\n(c) BE latency (s):\n";
  be_lat.Print(std::cout);
  return 0;
}
