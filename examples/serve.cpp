// serve — the online scheduling daemon.
//
// Wraps a Table 1 system in the svc::Server and listens on a Unix-domain
// socket and/or a localhost TCP port. Clients (examples/loadgen.cpp, or any
// svc::Client) submit jobs online; the simulation advances as fast as events
// allow. The daemon checkpoints on demand (TriggerCheckpoint RPC) or
// periodically, and --restore-from restarts it — admission queue, token
// table, and simulation state included — from such a checkpoint.
//
//   ./build/examples/serve --unix-socket=/tmp/3sigma.sock
//   ./build/examples/serve --tcp-port=7433 --system=3Sigma
//       --svc-checkpoint=/tmp/svc.snap --svc-checkpoint-every=50
//   ./build/examples/serve --unix-socket=/tmp/3sigma.sock
//       --restore-from=/tmp/svc.snap

#include <cstdlib>
#include <iostream>
#include <memory>

#include "src/common/flags.h"
#include "src/core/config_flags.h"
#include "src/core/experiment.h"
#include "src/svc/server.h"
#include "src/svc/socket_transport.h"
#include "src/twin/twin.h"

using namespace threesigma;

namespace {

// THREESIGMA_TWIN_* environment fallbacks (CI scripts configure the twin
// without editing command lines); explicit --twin-* flags win.
void ApplyTwinEnv(bool* enable, std::string* scenarios, int64_t* horizon,
                  int64_t* advise_every, bool* auto_apply, double* min_gain) {
  if (const char* v = std::getenv("THREESIGMA_TWIN")) {
    *enable = std::string(v) == "1";
  }
  if (const char* v = std::getenv("THREESIGMA_TWIN_SCENARIOS")) {
    *scenarios = v;
  }
  if (const char* v = std::getenv("THREESIGMA_TWIN_HORIZON")) {
    *horizon = std::atoll(v);
  }
  if (const char* v = std::getenv("THREESIGMA_TWIN_ADVISE_EVERY")) {
    *advise_every = std::atoll(v);
  }
  if (const char* v = std::getenv("THREESIGMA_TWIN_AUTO_APPLY")) {
    *auto_apply = std::string(v) == "1";
  }
  if (const char* v = std::getenv("THREESIGMA_TWIN_MIN_GAIN")) {
    *min_gain = std::atof(v);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentFlags flags;
  std::string system_name = "3Sigma";
  std::string unix_socket;
  int64_t tcp_port = -1;
  int64_t admission_capacity = 1024;
  int64_t max_batch = 256;
  double poll_timeout = 0.05;
  double idle_timeout = 0.0;
  std::string svc_checkpoint;
  int64_t svc_checkpoint_every = 0;
  std::string restore_from;
  bool pretrain = true;
  bool twin = false;
  std::string twin_scenarios;
  int64_t twin_horizon = 50;
  int64_t twin_advise_every = 0;
  bool twin_auto_apply = false;
  double twin_min_gain = 1e-9;
  ApplyTwinEnv(&twin, &twin_scenarios, &twin_horizon, &twin_advise_every, &twin_auto_apply,
               &twin_min_gain);

  FlagParser parser(
      "serve — run a scheduler as a long-lived service.\n"
      "Submissions arrive over RPC instead of a pre-generated workload; the\n"
      "shared experiment flags still shape the cluster, simulator, and\n"
      "predictor pre-training corpus.");
  RegisterExperimentFlags(parser, &flags);
  parser.AddString("system", &system_name, "Table 1 system to serve")
      .AddString("unix-socket", &unix_socket, "listen on this Unix-domain socket path")
      .AddInt("tcp-port", &tcp_port, "listen on this 127.0.0.1 TCP port (0 = ephemeral)")
      .AddInt("admission-capacity", &admission_capacity,
              "bounded admission queue size; a full queue answers RETRY_LATER")
      .AddInt("max-batch", &max_batch, "max submissions injected per service iteration")
      .AddDouble("poll-timeout", &poll_timeout, "transport poll timeout in seconds")
      .AddDouble("idle-timeout", &idle_timeout,
                 "drop client connections idle longer than this many seconds (0 = never)")
      .AddString("svc-checkpoint", &svc_checkpoint,
                 "service checkpoint file (TriggerCheckpoint RPC and periodic "
                 "checkpoints write here)")
      .AddInt("svc-checkpoint-every", &svc_checkpoint_every,
              "checkpoint every N completed scheduling cycles (0 = RPC-only)")
      .AddString("restore-from", &restore_from,
                 "restore the full service state from this checkpoint before "
                 "serving (must have been written by an identically configured "
                 "serve)")
      .AddBool("pretrain", &pretrain,
               "pre-train the predictor on the generated pretrain corpus")
      .AddBool("twin", &twin,
               "enable the digital-twin what-if engine (WhatIf/AdvisorStatus RPCs)")
      .AddString("twin-scenarios", &twin_scenarios,
                 "';'-separated scenario list for what-if sweeps (empty = built-in "
                 "default sweep)")
      .AddInt("twin-horizon", &twin_horizon, "speculative cycles per scenario fork")
      .AddInt("twin-advise-every", &twin_advise_every,
              "run an advisory sweep every N live cycles (0 = RPC-only)")
      .AddBool("twin-auto-apply", &twin_auto_apply,
               "let the advisor apply winning policy overrides to the live "
               "scheduler (opt-in; default off)")
      .AddDouble("twin-min-gain", &twin_min_gain,
                 "minimum projected-utility gain over baseline before the advisor "
                 "recommends/applies");
  if (!parser.Parse(argc, argv)) {
    return parser.exit_code();
  }

  ExperimentConfig config;
  std::string error;
  if (!BuildExperimentConfig(flags, &config, &error)) {
    std::cerr << error << "\n";
    return 1;
  }
  SystemKind kind;
  if (!ParseSystemName(system_name, &kind)) {
    std::cerr << "unknown --system '" << system_name << "'\n";
    return 1;
  }
  if (unix_socket.empty() && tcp_port < 0) {
    std::cerr << "need --unix-socket and/or --tcp-port\n";
    return 1;
  }
  if (config.obs.any()) {
    obs::Configure(config.obs);
  }

  SystemInstance instance = MakeSystem(kind, config.cluster, config.sched);
  if (pretrain) {
    const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
    for (const JobSpec& job : workload.pretrain) {
      instance.predictor->RecordCompletion(job.features, job.true_runtime);
    }
  }

  svc::SocketServerOptions socket_options;
  socket_options.unix_path = unix_socket;
  socket_options.tcp_port = static_cast<int>(tcp_port);
  socket_options.idle_timeout_seconds = idle_timeout;
  svc::SocketServerTransport transport;
  if (!transport.Listen(socket_options, &error)) {
    std::cerr << "cannot listen: " << error << "\n";
    return 1;
  }

  svc::ServiceOptions service;
  service.admission_capacity = static_cast<size_t>(admission_capacity);
  service.max_batch_per_cycle = static_cast<size_t>(max_batch);
  service.poll_timeout_seconds = poll_timeout;
  service.checkpoint_path = svc_checkpoint;
  service.checkpoint_every_cycles = svc_checkpoint_every;

  svc::Server server(config.cluster, instance.scheduler.get(), config.sim, service,
                     &transport);

  std::unique_ptr<WhatIfEngine> whatif;
  if (twin) {
    auto* dist_sched = dynamic_cast<DistributionScheduler*>(instance.scheduler.get());
    if (dist_sched == nullptr) {
      std::cerr << "--twin requires a DistributionScheduler-family --system\n";
      return 1;
    }
    TwinOptions twin_options;
    twin_options.kind = kind;
    twin_options.horizon_cycles = static_cast<int>(twin_horizon);
    twin_options.auto_apply = twin_auto_apply;
    twin_options.min_gain = twin_min_gain;
    twin_options.advise_every = twin_advise_every;
    if (!twin_scenarios.empty() &&
        !ParseScenarioList(twin_scenarios, &twin_options.advisory_scenarios, &error)) {
      std::cerr << "bad --twin-scenarios: " << error << "\n";
      return 1;
    }
    whatif = std::make_unique<WhatIfEngine>(config.cluster, dist_sched, twin_options);
    server.AttachWhatIfEngine(whatif.get());
  }

  if (!restore_from.empty()) {
    if (!server.RestoreFromFile(restore_from, &error)) {
      std::cerr << "cannot restore from '" << restore_from << "': " << error << "\n";
      return 1;
    }
    std::cout << "restored from " << restore_from << " at cycle "
              << server.simulator().cycles_completed() << "\n";
  }

  // Scripts wait for this line before connecting.
  std::cout << "READY system=" << system_name;
  if (twin) {
    std::cout << " twin=1";
  }
  if (!unix_socket.empty()) {
    std::cout << " unix=" << unix_socket;
  }
  if (transport.tcp_port() >= 0) {
    std::cout << " tcp=" << transport.tcp_port();
  }
  std::cout << std::endl;

  server.Serve();

  const SimStateInfo state = server.simulator().StateNow();
  std::cout << "serve exiting: " << state.total_jobs << " jobs total, "
            << state.completed_jobs << " completed, " << state.abandoned_jobs
            << " abandoned, " << state.cycles_completed << " cycles, sim time "
            << state.now << "s\n";
  if (whatif != nullptr) {
    std::cout << whatif->AdvisorStatusText();
  }
  transport.Close();
  if (config.obs.any()) {
    std::string obs_error;
    if (!obs::Flush(&obs_error)) {
      std::cerr << "observability export failed: " << obs_error << "\n";
      return 1;
    }
  }
  return 0;
}
