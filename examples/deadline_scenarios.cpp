// Deadline scenarios: the paper's §2.3 intuition, driven through the public
// scheduling API — why distributions beat point estimates, and how 3σSched's
// mis-estimate handling behaves.
//
//   ./build/examples/deadline_scenarios

#include <algorithm>
#include <iostream>

#include "src/cluster/cluster.h"
#include "src/cluster/job.h"
#include "src/common/table.h"
#include "src/histogram/empirical_distribution.h"
#include "src/predict/predictor.h"
#include "src/sched/distribution_scheduler.h"

using namespace threesigma;

namespace {

// A predictor scripted per job name (the "history" for this walkthrough).
class ScriptedPredictor : public RuntimePredictor {
 public:
  void Set(const std::string& name, EmpiricalDistribution dist) {
    table_["job=" + name] = std::move(dist);
  }
  RuntimePrediction Predict(const JobFeatures& features, double) override {
    RuntimePrediction pred;
    for (const std::string& f : features) {
      const auto it = table_.find(f);
      if (it != table_.end()) {
        pred.distribution = it->second;
        pred.point_estimate = it->second.Mean();
        pred.from_history = true;
        return pred;
      }
    }
    pred.distribution = EmpiricalDistribution::Point(60.0);
    pred.point_estimate = 60.0;
    return pred;
  }
  void RecordCompletion(const JobFeatures&, double) override {}

 private:
  std::map<std::string, EmpiricalDistribution> table_;
};

JobSpec Slo(JobId id, const std::string& name, Duration runtime, Time deadline,
            double value) {
  JobSpec spec;
  spec.id = id;
  spec.name = name;
  spec.type = JobType::kSlo;
  spec.true_runtime = runtime;
  spec.num_tasks = 1;
  spec.deadline = deadline;
  spec.utility = UtilityFunction::SloStep(value, deadline);
  spec.features = {"job=" + name};
  return spec;
}

void Banner(const std::string& text) { std::cout << "\n### " << text << "\n"; }

}  // namespace

int main() {
  std::cout << "Why schedule with distributions? Three short scenarios.\n";

  // -------------------------------------------------------------------------
  Banner("1. Same mean, different risk (the paper's case A vs case B)");
  const auto wide = EmpiricalDistribution::FromUniform(0.0, Minutes(10.0), 200);
  const auto narrow = EmpiricalDistribution::FromUniform(Minutes(2.5), Minutes(7.5), 200);
  TablePrinter risk({"distribution", "mean (min)", "P(SLO misses 15-min deadline if BE runs first)"});
  for (const auto& [label, dist] :
       std::vector<std::pair<std::string, const EmpiricalDistribution*>>{
           {"U(0,10)", &wide}, {"U(2.5,7.5)", &narrow}}) {
    // BE runs first, SLO starts when BE finishes: miss iff T_BE + T_SLO > 15.
    const double p_miss = std::max(0.0, dist->ExpectedValue([&](double be_t) {
      return 1.0 - dist->CdfAtMost(Minutes(15.0) - be_t);
    }));
    risk.AddRow({label, TablePrinter::Fmt(dist->Mean() / 60.0, 1),
                 TablePrinter::Fmt(p_miss, 3)});
  }
  risk.Print(std::cout);
  std::cout << "A point estimate (mean = 5 min) cannot tell these apart; the\n"
               "distribution exposes the 12.5% risk (paper, §2.3) that makes deferring\n"
               "the SLO job unsafe in case A and perfectly safe in case B.\n";

  // -------------------------------------------------------------------------
  Banner("2. Over-estimate handling rescues a mis-profiled job");
  ClusterConfig cluster = ClusterConfig::Uniform(1, 2);
  ScriptedPredictor predictor;
  // History claims ~30 min, but this run would actually take 4 minutes: a
  // classic over-estimate (input shrank, code improved, ...).
  predictor.Set("overest", EmpiricalDistribution::FromUniform(Minutes(28), Minutes(32), 50));
  DistSchedulerConfig config;
  config.planahead = Minutes(20.0);
  config.num_start_slots = 8;
  DistributionScheduler sched(cluster, &predictor, config);
  sched.OnJobArrival(Slo(1, "overest", Minutes(4.0), Minutes(10.0), 10.0), 0.0);
  ClusterStateView view;
  view.cluster = &cluster;
  view.free_nodes = {2};
  const CycleResult r = sched.RunCycle(0.0, view);
  std::cout << (r.start.empty()
                    ? "Job NOT scheduled (this is what a point scheduler does: it discards\n"
                      "the job as hopeless)."
                    : "Job scheduled despite 'impossible' history: adaptive over-estimate\n"
                      "handling extended its utility past the deadline, and the idle\n"
                      "cluster tries it. It will actually finish in 4 minutes.")
            << "\n";

  // -------------------------------------------------------------------------
  Banner("3. Under-estimate handling: a job outruns its entire history");
  const auto short_hist = EmpiricalDistribution::FromUniform(30.0, 60.0, 20);
  std::cout << "History max = " << short_hist.MaxValue() << "s. After the job runs past\n"
            << "that, Eq. 2 conditioning has no surviving atoms:\n";
  TablePrinter ue({"elapsed (s)", "conditional distribution"});
  for (double elapsed : {10.0, 45.0, 61.0}) {
    const auto cond = short_hist.ConditionalGivenExceeds(elapsed);
    ue.AddRow({TablePrinter::Fmt(elapsed, 0),
               cond.empty() ? "EMPTY -> exp-inc extension (2^t cycles, t=0,1,2,...)"
                            : "mean " + TablePrinter::Fmt(cond.Mean(), 1) + "s over " +
                                  std::to_string(cond.size()) + " atoms"});
  }
  ue.Print(std::cout);
  std::cout << "3σSched then books the straggler for exponentially growing extensions\n"
               "instead of assuming it finishes momentarily (§4.2.1), so queued jobs\n"
               "are not starved by repeated 'it will be done any second now' plans.\n";
  return 0;
}
