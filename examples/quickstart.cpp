// Quickstart: generate a small Google-like workload, run 3Sigma on a
// simulated 256-node cluster, and print the success metrics.
//
//   ./build/examples/quickstart

#include <iostream>

#include "src/common/table.h"
#include "src/core/experiment.h"

using namespace threesigma;

int main() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(/*num_groups=*/4, /*nodes_per_group=*/64);

  config.workload.env = EnvironmentKind::kGoogle;
  config.workload.duration = Hours(1.0);
  config.workload.load = 1.4;
  config.workload.seed = 7;

  config.sim.cycle_period = 10.0;
  config.sim.fidelity = SimFidelity::kIdeal;

  config.sched.cycle_period = config.sim.cycle_period;

  GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  std::cout << "Generated " << workload.jobs.size() << " jobs ("
            << workload.pretrain.size() << " pre-training), offered load "
            << workload.offered_load << "\n\n";

  TablePrinter table({"system", "SLO miss %", "goodput (M-hr)", "BE latency (s)",
                      "preemptions"});
  for (SystemKind kind : {SystemKind::kThreeSigma, SystemKind::kPointPerfEst,
                          SystemKind::kPointRealEst, SystemKind::kPrio}) {
    const RunMetrics m = RunSystem(kind, config, workload);
    table.AddRow({m.system, TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  TablePrinter::Fmt(m.goodput_machine_hours, 1),
                  TablePrinter::Fmt(m.mean_be_latency_seconds, 0),
                  std::to_string(m.preemptions)});
  }
  table.Print(std::cout);
  return 0;
}
