// loadgen — RPC load generator and correctness checker for serve.
//
// Generates the same synthetic workload a batch experiment would run and
// submits it to a serve daemon over RPC, closed-loop (back-to-back) or
// open-loop (target submission rate), reporting RPC latency percentiles and
// retry counts. The choreography hooks drive the CI durability smoke:
//
//   --checkpoint-at=N  after N successful submissions, TriggerCheckpoint
//   --kill-after=N     after N submissions, immediate (non-drain) Shutdown
//   --verify           resubmit every token (idempotent dedupe) and check
//                      each maps to exactly one job id, all ids distinct
//   --drain            graceful Shutdown, then poll until the cluster
//                      reports drained and check no submission was lost
//   --whatif           after the submit loop, run a digital-twin what-if
//                      sweep on the server and print the advisor report
//                      (--whatif-scenarios/--whatif-horizon shape the sweep;
//                      --whatif-out also writes the report to a file so CI
//                      can byte-diff two runs)
//
//   ./build/examples/loadgen --unix-socket=/tmp/3sigma.sock --jobs=1000
//       --checkpoint-at=400 --kill-after=600
//   ./build/examples/loadgen --unix-socket=/tmp/3sigma.sock --jobs=1000
//       --verify --drain

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/common/flags.h"
#include "src/core/config_flags.h"
#include "src/core/experiment.h"
#include "src/svc/client.h"
#include "src/svc/socket_transport.h"

using namespace threesigma;

namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentFlags flags;
  std::string unix_socket;
  std::string host = "127.0.0.1";
  int64_t tcp_port = -1;
  int64_t jobs = 100;
  std::string mode = "closed";
  double rate = 100.0;
  std::string token_prefix = "job";
  int64_t checkpoint_at = 0;
  int64_t kill_after = 0;
  bool verify = false;
  bool drain = false;
  double drain_wait = 120.0;
  double request_timeout = 10.0;
  bool whatif = false;
  std::string whatif_scenarios;
  int64_t whatif_horizon = 0;
  int64_t whatif_repeat = 1;
  bool whatif_live = false;
  std::string whatif_out;

  FlagParser parser(
      "loadgen — submit a generated workload to a serve daemon over RPC.\n"
      "The shared experiment flags must match the daemon's so the generated\n"
      "jobs fit its cluster.");
  RegisterExperimentFlags(parser, &flags);
  parser.AddString("unix-socket", &unix_socket, "connect to this Unix-domain socket path")
      .AddString("host", &host, "TCP host to connect to")
      .AddInt("tcp-port", &tcp_port, "TCP port to connect to")
      .AddInt("jobs", &jobs, "number of workload jobs to submit")
      .AddString("mode", &mode, "closed (back-to-back) | open (paced at --rate)")
      .AddDouble("rate", &rate, "open-loop target submissions per second")
      .AddString("token-prefix", &token_prefix, "idempotency token prefix")
      .AddInt("checkpoint-at", &checkpoint_at,
              "trigger a server checkpoint after this many successful "
              "submissions (0 = never)")
      .AddInt("kill-after", &kill_after,
              "send an immediate non-drain shutdown after this many "
              "submissions and exit (0 = never)")
      .AddBool("verify", &verify,
               "resubmit every token and check idempotent dedupe: one id per "
               "token, all ids distinct")
      .AddBool("drain", &drain,
               "finish with a graceful shutdown and wait for the drain, "
               "checking that no submission was lost")
      .AddDouble("drain-wait", &drain_wait, "max seconds to wait for the drain")
      .AddDouble("request-timeout", &request_timeout, "per-RPC receive timeout in seconds")
      .AddBool("whatif", &whatif,
               "run a what-if sweep after the submit loop and print the advisor "
               "report (server must run with --twin)")
      .AddString("whatif-scenarios", &whatif_scenarios,
                 "';'-separated scenario list for --whatif (empty = server default)")
      .AddInt("whatif-horizon", &whatif_horizon,
              "speculative cycles per scenario for --whatif (0 = server default)")
      .AddInt("whatif-repeat", &whatif_repeat,
              "issue the WhatIf RPC this many times (latency percentiles; the "
              "reports must all be byte-identical)")
      .AddBool("whatif-live", &whatif_live,
               "sweep without waiting for the service to go idle (exercises real "
               "speculative cycles; repeats are not compared)")
      .AddString("whatif-out", &whatif_out, "also write the what-if report to this file");
  if (!parser.Parse(argc, argv)) {
    return parser.exit_code();
  }

  ExperimentConfig config;
  std::string error;
  if (!BuildExperimentConfig(flags, &config, &error)) {
    std::cerr << error << "\n";
    return 1;
  }
  if (unix_socket.empty() && tcp_port < 0) {
    std::cerr << "need --unix-socket or --tcp-port\n";
    return 1;
  }

  const auto connect = [&]() -> std::unique_ptr<svc::SocketClientChannel> {
    std::string connect_error;
    auto channel =
        unix_socket.empty()
            ? svc::SocketClientChannel::ConnectTcp(host, static_cast<int>(tcp_port),
                                                   &connect_error)
            : svc::SocketClientChannel::ConnectUnix(unix_socket, &connect_error);
    if (channel == nullptr) {
      std::cerr << "connect failed: " << connect_error << "\n";
    }
    return channel;
  };

  std::unique_ptr<svc::SocketClientChannel> channel = connect();
  if (channel == nullptr) {
    return 1;
  }
  svc::ClientOptions client_options;
  client_options.request_timeout_seconds = request_timeout;
  svc::Client client(channel.get(), client_options);
  // Keep the replacement channel alive across reconnects.
  std::unique_ptr<svc::SocketClientChannel> spare;
  client.SetReconnect([&]() -> svc::ClientChannel* {
    spare = connect();
    return spare.get();
  });

  GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  if (static_cast<int64_t>(workload.jobs.size()) < jobs) {
    std::cerr << "workload has only " << workload.jobs.size() << " jobs; lower --jobs or "
              << "raise --hours/--load\n";
    return 1;
  }

  const bool open_loop = mode == "open";
  const double gap_seconds = rate > 0.0 ? 1.0 / rate : 0.0;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(jobs));
  std::map<std::string, JobId> token_ids;
  int64_t submitted = 0;
  bool killed = false;
  const auto start = std::chrono::steady_clock::now();

  for (int64_t i = 0; i < jobs; ++i) {
    if (open_loop) {
      const double target = static_cast<double>(i) * gap_seconds;
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (target > elapsed) {
        std::this_thread::sleep_for(std::chrono::duration<double>(target - elapsed));
      }
    }
    JobSpec spec = workload.jobs[static_cast<size_t>(i)];
    spec.id = 0;  // The server assigns ids; tokens identify our submissions.
    const std::string token = token_prefix + "-" + std::to_string(i);
    JobId assigned = 0;
    const auto rpc_start = std::chrono::steady_clock::now();
    if (!client.SubmitJob(spec, token, &assigned, &error)) {
      std::cerr << "submit " << token << " failed: " << error << "\n";
      return 1;
    }
    latencies.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - rpc_start).count());
    token_ids[token] = assigned;
    ++submitted;

    if (checkpoint_at > 0 && submitted == checkpoint_at) {
      std::string path;
      if (!client.TriggerCheckpoint(&path, &error)) {
        std::cerr << "checkpoint failed: " << error << "\n";
        return 1;
      }
      std::cout << "checkpointed " << submitted << " submissions to " << path << "\n";
    }
    if (kill_after > 0 && submitted == kill_after) {
      if (!client.Shutdown(/*drain=*/false, &error)) {
        std::cerr << "kill shutdown failed: " << error << "\n";
        return 1;
      }
      std::cout << "killed server after " << submitted << " submissions\n";
      killed = true;
      break;
    }
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::sort(latencies.begin(), latencies.end());
  std::printf("submitted %lld jobs in %.2fs (%.0f/s), retries %lld\n",
              static_cast<long long>(submitted), wall,
              wall > 0.0 ? static_cast<double>(submitted) / wall : 0.0,
              static_cast<long long>(client.total_retries()));
  if (!latencies.empty()) {
    std::printf("submit latency: p50 %.0fus  p90 %.0fus  p99 %.0fus  max %.0fus\n",
                Percentile(latencies, 0.50) * 1e6, Percentile(latencies, 0.90) * 1e6,
                Percentile(latencies, 0.99) * 1e6, latencies.back() * 1e6);
  }
  if (killed) {
    return 0;
  }

  if (whatif) {
    if (!whatif_live) {
      // Park the service first: wait until every admitted job has played out
      // and the admission queue is empty. A parked simulation cannot advance
      // between requests, so repeated sweeps — and sweeps issued by separate
      // loadgen runs against the same daemon — fork identical state and must
      // produce byte-identical reports. --whatif-live skips the gate (the
      // sweep then forks mid-run state, which exercises real speculative
      // cycles but is not reproducible between requests).
      const auto idle_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(120);
      for (;;) {
        SimStateInfo state;
        uint64_t queue_depth = 0;
        if (!client.GetClusterState(&state, &queue_depth, &error)) {
          std::cerr << "cluster state failed: " << error << "\n";
          return 1;
        }
        if (state.pending_jobs == 0 && state.running_jobs == 0 && queue_depth == 0) {
          break;
        }
        if (std::chrono::steady_clock::now() >= idle_deadline) {
          std::cerr << "service never went idle before --whatif\n";
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    std::string report;
    std::vector<double> whatif_latencies;
    for (int64_t i = 0; i < std::max<int64_t>(whatif_repeat, 1); ++i) {
      std::string this_report;
      const auto rpc_start = std::chrono::steady_clock::now();
      if (!client.WhatIf(whatif_scenarios, whatif_horizon, &this_report, &error)) {
        std::cerr << "whatif failed: " << error << "\n";
        return 1;
      }
      whatif_latencies.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - rpc_start)
              .count());
      // The server is parked between sweeps (we are its only client), so
      // repeated sweeps fork the same state and must agree byte-for-byte.
      // Live sweeps fork a moving simulation, so no such guarantee holds.
      if (!whatif_live && i > 0 && this_report != report) {
        std::cerr << "whatif reports differ between repeats\n";
        return 1;
      }
      report = std::move(this_report);
    }
    std::sort(whatif_latencies.begin(), whatif_latencies.end());
    std::printf("whatif latency over %zu calls: p50 %.1fms  p90 %.1fms  max %.1fms\n",
                whatif_latencies.size(), Percentile(whatif_latencies, 0.50) * 1e3,
                Percentile(whatif_latencies, 0.90) * 1e3, whatif_latencies.back() * 1e3);
    std::cout << report;
    std::string status;
    if (!client.AdvisorStatus(&status, &error)) {
      std::cerr << "advisor status failed: " << error << "\n";
      return 1;
    }
    std::cout << status;
    if (!whatif_out.empty()) {
      std::ofstream out(whatif_out, std::ios::binary | std::ios::trunc);
      out << report;
      if (!out) {
        std::cerr << "cannot write " << whatif_out << "\n";
        return 1;
      }
    }
  }

  if (verify) {
    // Resubmitting every token must dedupe to the already-assigned id (or
    // assign a fresh one for tokens a pre-restore server lost), and distinct
    // tokens must never share an id.
    std::set<JobId> distinct;
    for (int64_t i = 0; i < jobs; ++i) {
      const std::string token = token_prefix + "-" + std::to_string(i);
      JobSpec spec = workload.jobs[static_cast<size_t>(i)];
      spec.id = 0;
      JobId assigned = 0;
      if (!client.SubmitJob(spec, token, &assigned, &error)) {
        std::cerr << "verify resubmit " << token << " failed: " << error << "\n";
        return 1;
      }
      auto it = token_ids.find(token);
      if (it != token_ids.end() && it->second != assigned) {
        std::cerr << "verify failed: token " << token << " mapped to id " << it->second
                  << " then " << assigned << "\n";
        return 1;
      }
      token_ids[token] = assigned;
      if (!distinct.insert(assigned).second) {
        std::cerr << "verify failed: job id " << assigned << " assigned to two tokens\n";
        return 1;
      }
    }
    std::cout << "verified " << distinct.size() << " tokens -> " << distinct.size()
              << " distinct job ids\n";
  }

  if (drain) {
    if (!client.Shutdown(/*drain=*/true, &error)) {
      std::cerr << "drain shutdown failed: " << error << "\n";
      return 1;
    }
    const auto drain_start = std::chrono::steady_clock::now();
    SimStateInfo state;
    bool drained = false;
    while (std::chrono::duration<double>(std::chrono::steady_clock::now() - drain_start)
               .count() < drain_wait) {
      uint64_t queue_depth = 0;
      if (!client.GetClusterState(&state, &queue_depth, &error)) {
        std::cerr << "cluster state during drain failed: " << error << "\n";
        return 1;
      }
      if (state.drained && queue_depth == 0) {
        drained = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!drained) {
      std::cerr << "drain did not finish within " << drain_wait << "s\n";
      return 1;
    }
    std::printf("drained: %lld jobs total, %lld completed, %lld abandoned, %llu cycles\n",
                static_cast<long long>(state.total_jobs),
                static_cast<long long>(state.completed_jobs),
                static_cast<long long>(state.abandoned_jobs),
                static_cast<unsigned long long>(state.cycles_completed));
    // Only meaningful when this invocation was the sole submitter: a
    // drain-only run (--jobs=0) against a shared daemon sees everyone's jobs.
    if (jobs > 0 && state.total_jobs != static_cast<int64_t>(token_ids.size())) {
      std::cerr << "verify failed: " << token_ids.size() << " tokens but "
                << state.total_jobs << " jobs in the simulation\n";
      return 1;
    }
    if (state.completed_jobs + state.abandoned_jobs != state.total_jobs) {
      std::cerr << "verify failed: " << state.pending_jobs << " pending / "
                << state.running_jobs << " running after drain\n";
      return 1;
    }
  }
  return 0;
}
