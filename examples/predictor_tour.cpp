// Predictor tour: how 3σPredict builds per-feature runtime histories, scores
// its four expert estimators with NMAE, and hands the scheduler the winning
// feature's full runtime distribution.
//
//   ./build/examples/predictor_tour

#include <iostream>
#include <sstream>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/predict/predictor.h"
#include "src/predict/predictor_io.h"
#include "src/workload/generator.h"
#include "src/workload/trace_model.h"

using namespace threesigma;

int main() {
  // Replay a Mustang-like stream: a mix of highly repetitive campaigns and
  // erratic dev/test populations.
  const EnvironmentModel env = EnvironmentModel::Make(EnvironmentKind::kMustang, 64, 42);
  Rng rng(7);
  ThreeSigmaPredictor predictor;
  for (int i = 0; i < 20000; ++i) {
    const TraceJob job = env.Sample(rng);
    predictor.RecordCompletion(MakeJobFeatures(job), job.runtime);
  }
  std::cout << "Trained on 20000 jobs; " << predictor.history_count()
            << " feature-value histories (constant memory each).\n\n";

  // Predict a few fresh jobs and show what the predictor actually did.
  TablePrinter table({"user", "jobname", "actual (s)", "point est (s)", "dist p10..p90 (s)",
                      "winning expert"});
  for (int i = 0; i < 8; ++i) {
    const TraceJob job = env.Sample(rng);
    const RuntimePrediction pred = predictor.Predict(MakeJobFeatures(job), job.runtime);
    table.AddRow({job.user, job.jobname, TablePrinter::Fmt(job.runtime, 0),
                  TablePrinter::Fmt(pred.point_estimate, 0),
                  TablePrinter::Fmt(pred.distribution.Quantile(0.1), 0) + " .. " +
                      TablePrinter::Fmt(pred.distribution.Quantile(0.9), 0),
                  pred.source});
  }
  table.Print(std::cout);

  // Peek inside one feature history: the four experts and their NMAE scores.
  const TraceJob probe = env.Sample(rng);
  const std::string feature = "user=" + probe.user;
  const FeatureHistory* history = predictor.history(feature);
  if (history != nullptr) {
    std::cout << "\nExperts for " << feature << " (" << history->count()
              << " completions):\n";
    TablePrinter experts({"expert", "estimate (s)", "NMAE", "scored samples"});
    for (size_t k = 0; k < kNumExperts; ++k) {
      const auto kind = static_cast<ExpertKind>(k);
      experts.AddRow({ExpertKindName(kind),
                      history->Seeded(kind) ? TablePrinter::Fmt(history->Estimate(kind), 0)
                                            : "-",
                      TablePrinter::Fmt(history->NmaeScore(kind), 3),
                      std::to_string(history->NmaeSamples(kind))});
    }
    experts.Print(std::cout);
    std::cout << "Best expert: " << ExpertKindName(history->BestExpert()) << "\n";
  }

  // The Eq. 2 update: what the scheduler knows about a running job.
  std::cout << "\nConditional (Eq. 2) update for a running job of " << feature << ":\n";
  const RuntimePrediction pred = predictor.Predict({feature}, 0.0);
  TablePrinter cond({"elapsed (s)", "E[T | T > elapsed] (s)", "P(done in +60s)"});
  for (double elapsed : {0.0, 60.0, 300.0, 1800.0}) {
    const EmpiricalDistribution updated = pred.distribution.ConditionalGivenExceeds(elapsed);
    if (updated.empty()) {
      cond.AddRow({TablePrinter::Fmt(elapsed, 0), "outran all history (under-estimate!)",
                   "-"});
      continue;
    }
    cond.AddRow({TablePrinter::Fmt(elapsed, 0), TablePrinter::Fmt(updated.Mean(), 0),
                 TablePrinter::Fmt(updated.CdfAtMost(elapsed + 60.0), 3)});
  }
  cond.Print(std::cout);

  // Persistence: the full streaming state round-trips through text, so a
  // restarted scheduler resumes with warm histories instead of cold starts.
  std::stringstream snapshot;
  SavePredictor(snapshot, predictor);
  ThreeSigmaPredictor restored;
  const bool ok = LoadPredictor(snapshot, &restored);
  std::cout << "\nPersistence: saved " << predictor.history_count() << " histories ("
            << snapshot.str().size() / 1024 << " KiB), restore "
            << (ok && restored.history_count() == predictor.history_count() ? "OK"
                                                                            : "FAILED")
            << "\n";
  return 0;
}
