// run_experiment — the full experiment driver.
//
// Runs any subset of the Table 1 systems over a synthetic workload (Google /
// HedgeFund / Mustang models) or a trace loaded from CSV/SWF, printing the
// §5 success metrics plus an ASCII cluster-utilization timeline, and
// optionally exporting per-job and per-run CSVs.
//
//   ./build/examples/run_experiment --env=mustang --hours=1 --load=1.2
//   ./build/examples/run_experiment --systems=3Sigma,Prio --jobs-csv=out.csv
//   ./build/examples/run_experiment --swf=trace.swf --hours=2

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/config_flags.h"
#include "src/core/experiment.h"
#include "src/metrics/report.h"
#include "src/metrics/timeline.h"
#include "src/workload/trace_io.h"

using namespace threesigma;

int main(int argc, char** argv) {
  ExperimentFlags flags;
  std::string systems_csv = "3Sigma,PointPerfEst,PointRealEst,Prio";
  std::string swf_path;
  std::string trace_csv_path;
  std::string jobs_csv_out;
  std::string metrics_csv_out;
  bool timeline = true;
  bool slack_breakdown = false;
  std::string resume_from;

  FlagParser parser(
      "run_experiment — drive 3Sigma and its baselines over a workload.\n"
      "Synthetic by default; --swf/--trace-csv replay a real trace through\n"
      "the identical shaping pipeline.");
  RegisterExperimentFlags(parser, &flags);
  parser.AddString("systems", &systems_csv, "comma-separated Table 1 system names")
      .AddString("swf", &swf_path, "replay a Standard Workload Format trace file")
      .AddString("trace-csv", &trace_csv_path, "replay a native trace CSV file")
      .AddString("jobs-csv", &jobs_csv_out, "write per-job results CSV here")
      .AddString("metrics-csv", &metrics_csv_out, "write per-system metrics CSV here")
      .AddBool("timeline", &timeline, "print the ASCII utilization timeline")
      .AddBool("slack-breakdown", &slack_breakdown, "print SLO miss rate by deadline slack")
      .AddString("resume-from", &resume_from,
                 "resume from this checkpoint file instead of starting fresh; "
                 "--systems must name exactly the one system that wrote it "
                 "(cluster, workload, and fault state come from the snapshot)");
  if (!parser.Parse(argc, argv)) {
    return parser.exit_code();
  }

  ExperimentConfig config;
  std::string config_error;
  if (!BuildExperimentConfig(flags, &config, &config_error)) {
    std::cerr << config_error << "\n";
    return 1;
  }

  // Writes every configured observability sink; called on both exit paths.
  const auto flush_obs = [&config]() {
    if (!config.obs.any()) {
      return true;
    }
    std::string obs_error;
    if (!obs::Flush(&obs_error)) {
      std::cerr << "observability export failed: " << obs_error << "\n";
      return false;
    }
    return true;
  };

  if (!resume_from.empty()) {
    // ResumeSystem drives the simulator directly (it bypasses the
    // experiment-layer Simulate helper), so apply the gates here.
    if (config.obs.any()) {
      obs::Configure(config.obs);
    }
    SystemKind kind;
    if (systems_csv.find(',') != std::string::npos || !ParseSystemName(systems_csv, &kind)) {
      std::cerr << "--resume-from requires --systems to name exactly one system\n";
      return 1;
    }
    SimResult result;
    std::string error;
    if (!ResumeSystem(kind, resume_from, config.sched, config.sim, &result, &error)) {
      std::cerr << "cannot resume from '" << resume_from << "': " << error << "\n";
      return 1;
    }
    const RunMetrics m = ComputeMetrics(result, systems_csv);
    std::cout << "Resumed " << systems_csv << " from " << resume_from << ": "
              << result.cycles.size() << " cycles total, " << result.jobs.size() << " jobs\n";
    TablePrinter table({"system", "SLO miss %", "goodput (M-hr)", "BE lat mean/p90 (s)",
                        "preempts", "mean cycle (ms)"});
    table.AddRow({m.system, TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  TablePrinter::Fmt(m.goodput_machine_hours, 1),
                  TablePrinter::Fmt(m.mean_be_latency_seconds, 0) + " / " +
                      TablePrinter::Fmt(m.p90_be_latency_seconds, 0),
                  std::to_string(m.preemptions),
                  TablePrinter::Fmt(m.mean_cycle_seconds * 1000.0, 1)});
    table.Print(std::cout);
    if (!jobs_csv_out.empty()) {
      std::ofstream jobs_csv(jobs_csv_out);
      jobs_csv << "# system=" << systems_csv << "\n";
      WriteJobRecordsCsv(jobs_csv, result.jobs);
    }
    if (!metrics_csv_out.empty()) {
      std::ofstream out(metrics_csv_out);
      WriteRunMetricsCsv(out, {m});
      std::cout << "\nWrote metrics CSV to " << metrics_csv_out << "\n";
    }
    return flush_obs() ? 0 : 1;
  }

  GeneratedWorkload workload;
  if (!swf_path.empty() || !trace_csv_path.empty()) {
    const std::string path = swf_path.empty() ? trace_csv_path : swf_path;
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open trace file '" << path << "'\n";
      return 1;
    }
    SwfReadOptions swf_options;
    swf_options.max_tasks = config.cluster.max_group_size();
    std::vector<TimedTraceJob> records =
        swf_path.empty() ? ReadTraceCsv(in) : ReadSwf(in, swf_options);
    // Keep the requested window; pre-train on everything before it.
    std::vector<TimedTraceJob> window;
    std::vector<TimedTraceJob> history;
    for (TimedTraceJob& r : records) {
      if (r.job.num_tasks > config.cluster.max_group_size()) {
        continue;
      }
      (r.submit <= config.workload.duration ? window : history).push_back(std::move(r));
    }
    workload.jobs = ShapeTraceJobs(window, config.cluster, config.workload);
    for (const TimedTraceJob& r : history) {
      JobSpec spec;
      spec.true_runtime = r.job.runtime;
      spec.features = MakeJobFeatures(r.job);
      workload.pretrain.push_back(std::move(spec));
    }
    double work = 0.0;
    for (const JobSpec& job : workload.jobs) {
      work += job.true_runtime * job.num_tasks;
    }
    workload.offered_load = work / (config.cluster.total_nodes() * config.workload.duration);
    std::cout << "Replaying " << workload.jobs.size() << " trace jobs from " << path << " ("
              << workload.pretrain.size() << " later jobs used for pre-training)\n";
  } else {
    workload = GenerateWorkload(config.cluster, config.workload);
  }
  std::cout << "Workload: " << workload.jobs.size() << " jobs, offered load "
            << TablePrinter::Fmt(workload.offered_load, 2) << ", cluster "
            << config.cluster.total_nodes() << " nodes in " << config.cluster.num_groups()
            << " groups\n\n";

  std::vector<RunMetrics> all_metrics;
  std::ofstream jobs_csv;
  if (!jobs_csv_out.empty()) {
    jobs_csv.open(jobs_csv_out);
  }

  TablePrinter table({"system", "SLO miss %", "goodput (M-hr)", "BE lat mean/p90 (s)",
                      "preempts", "mean cycle (ms)"});
  std::istringstream systems_stream(systems_csv);
  std::string system_name;
  while (std::getline(systems_stream, system_name, ',')) {
    SystemKind kind;
    if (!ParseSystemName(system_name, &kind)) {
      std::cerr << "unknown system '" << system_name << "'\n";
      return 1;
    }
    const SimResult result = SimulateSystem(kind, config, workload);
    const RunMetrics m = ComputeMetrics(result, system_name);
    all_metrics.push_back(m);
    table.AddRow({m.system, TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  TablePrinter::Fmt(m.goodput_machine_hours, 1),
                  TablePrinter::Fmt(m.mean_be_latency_seconds, 0) + " / " +
                      TablePrinter::Fmt(m.p90_be_latency_seconds, 0),
                  std::to_string(m.preemptions),
                  TablePrinter::Fmt(m.mean_cycle_seconds * 1000.0, 1)});
    if (config.sim.faults.any()) {
      std::cout << system_name << " faults: downtime "
                << TablePrinter::Fmt(100.0 * m.node_downtime_fraction, 2) << "%, "
                << m.tasks_killed_by_faults << " fault kills, rework "
                << TablePrinter::Fmt(m.rework_machine_hours, 1) << " M-hr (ratio "
                << TablePrinter::Fmt(m.rework_ratio, 3) << "), " << m.stalled_cycles
                << " stalled cycles\n";
    }
    if (timeline) {
      std::cout << "---- " << system_name << " cluster occupancy ----\n"
                << ClusterTimeline(config.cluster, result).RenderAscii() << "\n";
    }
    if (slack_breakdown) {
      std::cout << "---- " << system_name << " SLO miss by deadline slack ----\n";
      TablePrinter slack_table({"slack bucket", "jobs", "missed", "miss %"});
      for (const SlackBucketMetrics& b :
           MissBySlack(result, {0.0, 30.0, 50.0, 70.0, 1000.0})) {
        slack_table.AddRow({TablePrinter::Fmt(b.slack_low, 0) + "-" +
                                TablePrinter::Fmt(b.slack_high, 0) + "%",
                            std::to_string(b.jobs), std::to_string(b.missed),
                            TablePrinter::Fmt(b.miss_rate_percent, 1)});
      }
      slack_table.Print(std::cout);
      std::cout << "\n";
    }
    if (jobs_csv.is_open()) {
      jobs_csv << "# system=" << system_name << "\n";
      WriteJobRecordsCsv(jobs_csv, result.jobs);
    }
  }
  table.Print(std::cout);

  if (!metrics_csv_out.empty()) {
    std::ofstream out(metrics_csv_out);
    WriteRunMetricsCsv(out, all_metrics);
    std::cout << "\nWrote metrics CSV to " << metrics_csv_out << "\n";
  }
  return flush_obs() ? 0 : 1;
}
