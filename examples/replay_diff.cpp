// replay_diff — deterministic-replay divergence finder.
//
// Resumes two snapshots (or one snapshot twice under different configs),
// steps both simulations cycle-by-cycle in lockstep, and bisects to the
// *first* scheduling cycle at which their serialized states diverge,
// reporting which module's section hash differs ("sched"? "rng"? "sim"?).
// Wall-clock timings live in their own "timing" section and are ignored, so
// any reported divergence is a real determinism break.
//
// The scan is two-phase: a coarse pass compares full state buffers every
// --stride cycles (saving the last matching pair), then on a mismatch both
// simulators are restored from that matching pair and re-stepped one cycle
// at a time to pin the exact cycle.
//
//   ./build/examples/replay_diff --a=ckpt.snap                      # self-check
//   ./build/examples/replay_diff --a=ckpt.snap --perturb-rng-b      # forced diff
//   ./build/examples/replay_diff --a=ckpt.snap --solver-threads-b=4 # config A/B

#include <iostream>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/core/experiment.h"
#include "src/snapshot/snapshot_io.h"

using namespace threesigma;

namespace {

constexpr const char* kIgnoredSections[] = {"timing"};

struct Replica {
  CheckpointInfo info;
  SystemInstance instance;
  std::unique_ptr<Simulator> sim;
};

bool BuildReplica(const std::string& path, SystemKind kind, const DistSchedulerConfig& sched,
                  int solver_threads, Replica* out, std::string* error) {
  if (!Simulator::PeekCheckpoint(path, &out->info, error)) {
    return false;
  }
  DistSchedulerConfig config = sched;
  config.solver_threads = solver_threads;
  out->instance = MakeSystem(kind, out->info.cluster, config);
  out->sim = std::make_unique<Simulator>(out->info.cluster, out->instance.scheduler.get(),
                                         std::vector<JobSpec>{}, out->info.options);
  return out->sim->TryResumeFrom(path, error);
}

// Serialized state with wall-clock timings excluded from comparison.
bool StatesEqual(const std::string& a, const std::string& b) {
  return DiffSnapshotSections(a, b, {kIgnoredSections[0]}).empty();
}

void DumpDivergence(uint64_t cycle, const std::string& a, const std::string& b) {
  std::cout << "FIRST DIVERGENT CYCLE: " << cycle << "\n";
  const std::vector<std::string> diff = DiffSnapshotSections(a, b, {kIgnoredSections[0]});
  std::vector<SnapshotSection> sections_a;
  std::vector<SnapshotSection> sections_b;
  ListSnapshotSections(a, &sections_a);
  ListSnapshotSections(b, &sections_b);
  const auto find = [](const std::vector<SnapshotSection>& sections, const std::string& name) {
    for (const SnapshotSection& s : sections) {
      if (s.name == name) {
        return &s;
      }
    }
    return static_cast<const SnapshotSection*>(nullptr);
  };
  std::cout << "diverged sections (module state hashes):\n";
  for (const std::string& name : diff) {
    const SnapshotSection* sa = find(sections_a, name);
    const SnapshotSection* sb = find(sections_b, name);
    std::cout << "  " << name << ": A ";
    if (sa != nullptr) {
      std::cout << std::hex << sa->hash << std::dec << " (" << sa->payload_size << " B)";
    } else {
      std::cout << "<absent>";
    }
    std::cout << "  B ";
    if (sb != nullptr) {
      std::cout << std::hex << sb->hash << std::dec << " (" << sb->payload_size << " B)";
    } else {
      std::cout << "<absent>";
    }
    std::cout << "\n";
  }
  std::cout << "matching sections:";
  for (const SnapshotSection& s : sections_a) {
    bool diverged = false;
    for (const std::string& name : diff) {
      diverged = diverged || name == s.name;
    }
    if (!diverged && s.name != kIgnoredSections[0]) {
      std::cout << " " << s.name;
    }
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string a_path;
  std::string b_path;
  std::string system_name = "3Sigma";
  int64_t solver_threads_a = 1;
  int64_t solver_threads_b = 1;
  int64_t stride = 8;
  int64_t max_cycles = 0;
  bool perturb_rng_b = false;

  FlagParser parser(
      "replay_diff — resume two snapshots (or one under two configs), step\n"
      "them in lockstep, and bisect to the first cycle whose module state\n"
      "hashes diverge.");
  parser.AddString("a", &a_path, "snapshot file for replica A (required)")
      .AddString("b", &b_path, "snapshot file for replica B (default: same as --a)")
      .AddString("system", &system_name, "Table 1 system that wrote the snapshots")
      .AddInt("solver-threads-a", &solver_threads_a, "MILP solver threads for replica A")
      .AddInt("solver-threads-b", &solver_threads_b, "MILP solver threads for replica B")
      .AddInt("stride", &stride, "coarse scan interval in cycles before bisecting")
      .AddInt("max-cycles", &max_cycles, "stop scanning after this many cycles (0 = drain)")
      .AddBool("perturb-rng-b", &perturb_rng_b,
               "burn one RNG draw on replica B before stepping (injects a known "
               "divergence to exercise the bisection)");
  if (!parser.Parse(argc, argv)) {
    return parser.exit_code();
  }
  if (a_path.empty()) {
    std::cerr << "--a is required\n";
    return 1;
  }
  if (b_path.empty()) {
    b_path = a_path;
  }
  if (stride < 1) {
    stride = 1;
  }
  SystemKind kind = SystemKind::kThreeSigma;
  {
    bool found = false;
    for (SystemKind k : {SystemKind::kThreeSigma, SystemKind::kThreeSigmaNoDist,
                         SystemKind::kThreeSigmaNoOE, SystemKind::kThreeSigmaNoAdapt,
                         SystemKind::kPointPerfEst, SystemKind::kPointRealEst,
                         SystemKind::kPrio}) {
      if (system_name == SystemName(k)) {
        kind = k;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown system '" << system_name << "'\n";
      return 1;
    }
  }

  DistSchedulerConfig sched;
  Replica a;
  Replica b;
  std::string error;
  if (!BuildReplica(a_path, kind, sched, static_cast<int>(solver_threads_a), &a, &error)) {
    std::cerr << "cannot resume A from '" << a_path << "': " << error << "\n";
    return 1;
  }
  if (!BuildReplica(b_path, kind, sched, static_cast<int>(solver_threads_b), &b, &error)) {
    std::cerr << "cannot resume B from '" << b_path << "': " << error << "\n";
    return 1;
  }
  if (perturb_rng_b) {
    b.sim->DebugPerturbRng();
  }

  std::cout << "A: " << a_path << " at cycle " << a.info.cycles_completed << ", t="
            << a.info.now << "\n";
  std::cout << "B: " << b_path << " at cycle " << b.info.cycles_completed << ", t="
            << b.info.now << "\n";

  // Baseline check before stepping at all.
  std::string last_equal_a = a.sim->SaveStateToBuffer();
  std::string last_equal_b = b.sim->SaveStateToBuffer();
  if (!StatesEqual(last_equal_a, last_equal_b)) {
    DumpDivergence(a.sim->cycles_completed(), last_equal_a, last_equal_b);
    return 2;
  }

  // Coarse scan: compare every `stride` cycles, remembering the last equal
  // state pair as the bisection anchor.
  uint64_t scanned = 0;
  bool diverged = false;
  while (!diverged) {
    bool a_alive = true;
    bool b_alive = true;
    for (int64_t i = 0; i < stride && (a_alive || b_alive); ++i) {
      a_alive = a.sim->Step();
      b_alive = b.sim->Step();
      ++scanned;
      if (a_alive != b_alive) {
        std::cout << "FIRST DIVERGENT CYCLE: " << a.sim->cycles_completed()
                  << " (replica " << (a_alive ? "B" : "A") << " drained first)\n";
        return 2;
      }
      if (max_cycles > 0 && scanned >= static_cast<uint64_t>(max_cycles)) {
        break;
      }
    }
    const std::string state_a = a.sim->SaveStateToBuffer();
    const std::string state_b = b.sim->SaveStateToBuffer();
    if (StatesEqual(state_a, state_b)) {
      last_equal_a = state_a;
      last_equal_b = state_b;
      if (!a_alive || (max_cycles > 0 && scanned >= static_cast<uint64_t>(max_cycles))) {
        std::cout << "no divergence through cycle " << a.sim->cycles_completed()
                  << (a_alive ? " (scan limit reached)" : " (both replicas drained)") << "\n";
        return 0;
      }
      continue;
    }
    diverged = true;
  }

  // Bisect: rewind both replicas to the last matching state, then re-step one
  // cycle at a time to pin the first divergent cycle.
  a.sim->RestoreStateFromBuffer(last_equal_a);
  b.sim->RestoreStateFromBuffer(last_equal_b);
  while (true) {
    const bool a_alive = a.sim->Step();
    const bool b_alive = b.sim->Step();
    if (a_alive != b_alive) {
      std::cout << "FIRST DIVERGENT CYCLE: " << a.sim->cycles_completed()
                << " (replica " << (a_alive ? "B" : "A") << " drained first)\n";
      return 2;
    }
    const std::string state_a = a.sim->SaveStateToBuffer();
    const std::string state_b = b.sim->SaveStateToBuffer();
    if (!StatesEqual(state_a, state_b)) {
      DumpDivergence(a.sim->cycles_completed(), state_a, state_b);
      return 2;
    }
    if (!a_alive) {
      // The coarse pass saw a diff but the replay does not: the divergence
      // was not reproducible from serialized state — report loudly.
      std::cout << "divergence seen in coarse scan did not reproduce after rewind\n";
      return 3;
    }
  }
}
