// Compare all seven systems (Table 1 + Fig. 8 ablations) over one workload,
// with a breakdown of *why* SLO jobs missed under each.
//
//   ./build/examples/compare_schedulers            (Google-like workload)
//   THREESIGMA_SEED=7 ./build/examples/compare_schedulers

#include <iostream>

#include "src/common/env.h"
#include "src/common/table.h"
#include "src/core/experiment.h"

using namespace threesigma;

namespace {

struct MissBreakdown {
  int never_started = 0;   // Abandoned or unfinished without ever running.
  int finished_late = 0;   // Completed after the deadline.
  int still_running = 0;   // Running at the simulation stop.
};

MissBreakdown Breakdown(const SimResult& result) {
  MissBreakdown b;
  for (const JobRecord& job : result.jobs) {
    if (!job.spec.is_slo() || !job.MissedDeadline()) {
      continue;
    }
    if (job.status == JobStatus::kCompleted) {
      ++b.finished_late;
    } else if (job.start_time != kNever) {
      ++b.still_running;
    } else {
      ++b.never_started;
    }
  }
  return b;
}

}  // namespace

int main() {
  ExperimentConfig config;
  config.cluster = ClusterConfig::Uniform(4, 64);
  config.workload.env = EnvironmentKind::kGoogle;
  config.workload.duration = Minutes(40.0);
  config.workload.load = 1.4;
  config.workload.seed = BenchSeed();
  config.sim.cycle_period = 10.0;
  config.sim.seed = BenchSeed();
  config.sched.cycle_period = config.sim.cycle_period;

  const GeneratedWorkload workload = GenerateWorkload(config.cluster, config.workload);
  std::cout << "Workload: " << workload.jobs.size() << " jobs over 40 simulated minutes, "
            << "offered load " << TablePrinter::Fmt(workload.offered_load, 2) << "\n\n";

  TablePrinter table({"system", "SLO miss %", "never started", "finished late",
                      "still running", "goodput (M-hr)", "BE lat (s)", "preempts"});
  for (SystemKind kind :
       {SystemKind::kThreeSigma, SystemKind::kThreeSigmaNoDist, SystemKind::kThreeSigmaNoOE,
        SystemKind::kThreeSigmaNoAdapt, SystemKind::kPointPerfEst, SystemKind::kPointRealEst,
        SystemKind::kPrio}) {
    const SimResult result = SimulateSystem(kind, config, workload);
    const RunMetrics m = ComputeMetrics(result, SystemName(kind));
    const MissBreakdown b = Breakdown(result);
    table.AddRow({m.system, TablePrinter::Fmt(m.slo_miss_rate_percent, 1),
                  std::to_string(b.never_started), std::to_string(b.finished_late),
                  std::to_string(b.still_running),
                  TablePrinter::Fmt(m.goodput_machine_hours, 1),
                  TablePrinter::Fmt(m.mean_be_latency_seconds, 0),
                  std::to_string(m.preemptions)});
  }
  table.Print(std::cout);
  std::cout << "\nReading the breakdown: PointRealEst's misses concentrate in 'never\n"
               "started' (over-estimated jobs discarded as hopeless) and 'finished late'\n"
               "(under-estimated jobs started too close to their deadlines); 3Sigma\n"
               "converts most of both back into on-time completions.\n";
  return 0;
}
